// Package compile lowers programs of the lang package into flat population
// protocols, implementing the paper's compilation pipeline:
//
//	§4  precompilation — assignments become the two-leaf trigger pattern of
//	    Fig. 1 (arm K(#), then fire exactly once per agent); "if exists"
//	    conditions become the two-leaf Z(#) pattern of Fig. 2 (clear, then
//	    epidemic from the condition's satisfying agents), with the branch
//	    bodies folded together under Z(#)/¬Z(#) guards; the result is a
//	    tree whose leaves are "execute for ≥ c·ln n rounds ruleset" nodes,
//	    padded to a complete w_max-ary tree of depth l_max;
//	§5.4 deployment — every leaf ruleset R_τ is emitted guarded by the
//	    time-path filter Π_τ = C^(1) = 4(τ₁−1) ∧ ⋀_{j>1} C*^(j) = 4(τ_j−1)
//	    over a clock hierarchy with module m = 4·w_max, composed with the
//	    hierarchy machinery itself and an X-control process (§5.2).
//
// The compiled protocol is a genuine flat rule set: running it under the
// plain uniform-random scheduler reproduces the program's iterations, with
// one outer iteration per cycle of the slowest clock.
package compile

import (
	"fmt"

	"popkit/internal/bitmask"
	"popkit/internal/clock"
	"popkit/internal/engine"
	"popkit/internal/junta"
	"popkit/internal/lang"
	"popkit/internal/osc"
	"popkit/internal/rules"
)

// XControl selects the control-state reduction process compiled in.
type XControl int

const (
	// XTwoMeet compiles in the Proposition 5.3 process (always-correct
	// flavour, O(n^ε) initialization).
	XTwoMeet XControl = iota
	// XCascade compiles in the Proposition 5.5 two-level cascade (w.h.p.
	// flavour, polylog initialization).
	XCascade
	// XPreReduced skips the reduction: the caller initializes #X ≈ √n
	// directly. Experiments use this to skip the initialization phase the
	// same way Theorem 5.2 assumes a started clock.
	XPreReduced
)

// Options configure compilation.
type Options struct {
	// K is the clock's consecutive-hit count (0 = clock.DefaultK).
	K int
	// Control selects the X-reduction process.
	Control XControl
	// Osc overrides oscillator parameters (zero value = defaults).
	Osc osc.Params
	// DeterministicCoins compiles "X := rand" via the synthetic-coin
	// technique of [AAE+17] (the paper's closing remark): a toggled bit
	// read from the interaction partner replaces the randomized rule
	// choice, making every transition deterministic.
	DeterministicCoins bool
	// ProgramWeight multiplies the scheduler weight of every emitted
	// program group (0 = default 6). It plays the role of the paper's
	// constant c: each agent must execute every assignment and branch
	// leaf during its window w.h.p., so program rules need a constant
	// fraction of the scheduler slots.
	ProgramWeight int
}

// Compiled is the result of compiling a program.
type Compiled struct {
	Prog      *lang.Program
	Space     *bitmask.Space
	X         bitmask.Var
	Hierarchy *clock.Hierarchy
	Rules     *rules.Ruleset

	// WMax, LMax and M document the padded tree geometry and module.
	WMax, LMax, M int
	// Leaves is the number of emitted (non-idle) leaves.
	Leaves int
	// LeafWindows maps emitted leaf index → its time path (outermost
	// first), for tracing.
	LeafWindows [][]int

	control    XControl
	twoMeet    *junta.TwoMeet
	cascade    *junta.Cascade
	coin       *junta.SyntheticCoin
	progInit   bitmask.State
	progWeight int
}

// tree is the precompiled program structure.
type tree struct {
	children []*tree
	leaf     *rules.Ruleset // non-nil for work leaves; nil for internal/idle
}

func (t *tree) isLeaf() bool { return len(t.children) == 0 }

// depth returns the tree's depth (leaves at depth 1).
func (t *tree) depth() int {
	if t.isLeaf() {
		return 1
	}
	max := 0
	for _, c := range t.children {
		if d := c.depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// width returns the maximum child count over internal nodes.
func (t *tree) width() int {
	if t.isLeaf() {
		return 0
	}
	w := len(t.children)
	for _, c := range t.children {
		if cw := c.width(); cw > w {
			w = cw
		}
	}
	return w
}

// Compile lowers the program. The program must pass lang.Check and have
// exactly one repeat thread (Forever threads are composed in ungated).
func Compile(prog *lang.Program, opt Options) (*Compiled, error) {
	if err := prog.Check(); err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	if opt.K == 0 {
		opt.K = clock.DefaultK
	}
	if opt.ProgramWeight == 0 {
		opt.ProgramWeight = 6
	}
	if opt.Osc == (osc.Params{}) {
		opt.Osc = osc.DefaultParams()
	}
	sp, err := prog.BuildSpace()
	if err != nil {
		return nil, err
	}
	c := &Compiled{Prog: prog, Space: sp, control: opt.Control}
	c.progInit = prog.InitialState(sp)

	// Precompile the repeat thread into the leaf tree; collect Forever
	// threads as ungated background rulesets.
	var background []*rules.Ruleset
	var mainTree *tree
	pc := &precompiler{sp: sp}
	if opt.DeterministicCoins {
		c.coin = junta.NewSyntheticCoin(sp, "Sc")
		pc.coin = c.coin
		background = append(background, c.coin.Rules())
	}
	for _, th := range prog.Threads {
		if forever, rs, err := foreverRules(sp, th); err != nil {
			return nil, fmt.Errorf("compile: thread %s: %w", th.Name, err)
		} else if forever {
			background = append(background, rs)
			continue
		}
		if mainTree != nil {
			return nil, fmt.Errorf("compile: multiple repeat threads are not supported by the direct compiler (thread %s); compose them via the frame executor", th.Name)
		}
		body := th.Body
		if len(body) == 1 {
			if rep, ok := body[0].(lang.Repeat); ok {
				body = rep.Body
			}
		}
		nodes, err := pc.block(body)
		if err != nil {
			return nil, fmt.Errorf("compile: thread %s: %w", th.Name, err)
		}
		mainTree = &tree{children: nodes}
	}
	if mainTree == nil {
		return nil, fmt.Errorf("compile: program has no repeat thread")
	}

	// Geometry: pad to a complete w_max-ary tree of depth l_max.
	c.LMax = mainTree.depth() - 1 // root is the unbounded repeat
	if c.LMax < 1 {
		c.LMax = 1
	}
	c.WMax = mainTree.width()
	if c.WMax < 1 {
		c.WMax = 1
	}
	c.M = 4 * c.WMax
	if c.M < 8 {
		c.M = 8
	}
	pad(mainTree, c.LMax+1, c.WMax)

	// Build the clock hierarchy and X-control over the same space.
	c.X = sp.Bool("Xctl")
	c.Hierarchy = clock.NewHierarchy(sp, c.X, c.LMax, c.M, opt.K, opt.Osc)
	var controlRS *rules.Ruleset
	switch opt.Control {
	case XTwoMeet:
		c.twoMeet = junta.NewTwoMeet(sp, c.X)
		controlRS = c.twoMeet.Rules()
	case XCascade:
		c.cascade = junta.NewCascade(sp, "Jc", c.X, 2)
		controlRS = c.cascade.Rules()
	case XPreReduced:
		// no reduction rules
	default:
		return nil, fmt.Errorf("compile: unknown X control %d", opt.Control)
	}

	// Emit leaf rules guarded by their time paths (§5.4).
	gated := rules.NewRuleset(sp)
	c.progWeight = opt.ProgramWeight
	c.emit(mainTree, nil, gated)

	parts := []*rules.Ruleset{c.Hierarchy.Rules()}
	if controlRS != nil {
		parts = append(parts, controlRS)
	}
	if gated.Len() > 0 {
		parts = append(parts, gated)
	}
	parts = append(parts, background...)
	c.Rules = rules.Concat(parts...)
	if err := c.Rules.Validate(); err != nil {
		return nil, fmt.Errorf("compile: emitted ruleset invalid: %w", err)
	}
	return c, nil
}

// foreverRules returns the merged ruleset of a Forever thread.
func foreverRules(sp *bitmask.Space, th lang.Thread) (bool, *rules.Ruleset, error) {
	if len(th.Body) == 0 {
		return false, nil, nil
	}
	var parts []*rules.Ruleset
	for _, st := range th.Body {
		ex, ok := st.(lang.Execute)
		if !ok || !ex.Forever {
			return false, nil, nil
		}
		rs, err := rules.Parse(sp, joinLines(ex.Rules))
		if err != nil {
			return true, nil, err
		}
		parts = append(parts, rs)
	}
	return true, rules.Concat(parts...), nil
}

// pad makes the tree a complete wide-ary tree of the given depth by
// wrapping shallow leaves in artificial single-work chains and appending
// idle leaves.
func pad(t *tree, depth, width int) {
	if depth <= 1 {
		return
	}
	if t.isLeaf() {
		// Wrap the leaf's work one level down; the work simply repeats
		// during the inner cycles, which the language permits ("≥ c ln n").
		child := &tree{leaf: t.leaf}
		t.leaf = nil
		t.children = []*tree{child}
	}
	for len(t.children) < width {
		t.children = append(t.children, &tree{}) // idle leaf
	}
	for _, ch := range t.children {
		pad(ch, depth-1, width)
	}
}

// emit walks the padded tree, attaching Π_τ guards. path holds child
// indices from the root (outermost level first).
func (c *Compiled) emit(t *tree, path []int, out *rules.Ruleset) {
	if t.isLeaf() {
		if t.leaf == nil || t.leaf.Len() == 0 {
			return
		}
		guard := c.timePathGuard(path)
		gr := t.leaf.Guarded(guard)
		base := len(out.Rules)
		out.Rules = append(out.Rules, gr.Rules...)
		for _, g := range gr.Groups {
			g.Start += base
			g.End += base
			g.Weight *= c.progWeight
			out.Groups = append(out.Groups, g)
		}
		c.Leaves++
		c.LeafWindows = append(c.LeafWindows, append([]int(nil), path...))
		return
	}
	for i, ch := range t.children {
		c.emit(ch, append(path, i), out)
	}
}

// timePathGuard builds Π_τ for a root-first path: position k in the path
// corresponds to hierarchy level LMax−k, and child index i selects phase
// 4·i at that level. Level 1 reads its live counter; higher levels read
// their stored copies (Proposition 5.6).
func (c *Compiled) timePathGuard(path []int) bitmask.Formula {
	parts := make([]bitmask.Formula, 0, len(path))
	for k, idx := range path {
		level := c.LMax - k
		phase := 4 * idx
		if level == 1 {
			parts = append(parts, c.Hierarchy.Clocks[0].PhaseFormula(phase))
		} else {
			parts = append(parts, c.Hierarchy.StoredPhaseFormula(level, phase))
		}
	}
	return bitmask.And(parts...)
}

// InitAgent builds one agent's start state: program initial values, fresh
// hierarchy layers, and the control flag per the chosen process. For
// XPreReduced, pass preX=true for the junta members only; for the other
// modes preX is ignored (every agent starts in X, as §5.2 prescribes).
func (c *Compiled) InitAgent(s bitmask.State, rng *engine.RNG, preX bool) bitmask.State {
	s.Lo |= c.progInit.Lo
	s.Hi |= c.progInit.Hi
	switch c.control {
	case XTwoMeet:
		s = c.twoMeet.InitAgent(s)
	case XCascade:
		s = c.cascade.InitAgent(s)
	case XPreReduced:
		s = c.X.Set(s, preX)
	}
	return c.Hierarchy.InitAgent(s, rng)
}

// NewPopulation builds an n-agent population. For XPreReduced, ⌈√n/2⌉
// agents start in X.
func (c *Compiled) NewPopulation(n int, rng *engine.RNG) *engine.Dense {
	nx := isqrt(n)/2 + 1
	return engine.NewDenseInit(n, func(i int) bitmask.State {
		s := c.InitAgent(bitmask.State{}, rng, i < nx)
		if c.coin != nil {
			s = c.coin.InitAgent(s, i)
		}
		return s
	})
}

// Describe summarizes the compilation for popc and logs.
func (c *Compiled) Describe() string {
	return fmt.Sprintf("%s: l_max=%d w_max=%d m=%d leaves=%d rules=%d groups=%d bits=%d",
		c.Prog.Name, c.LMax, c.WMax, c.M, c.Leaves, c.Rules.Len(), c.Rules.NumGroups(), c.Space.NumBitsUsed())
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}
