package compile

import (
	"fmt"

	"popkit/internal/bitmask"
	"popkit/internal/junta"
	"popkit/internal/lang"
	"popkit/internal/rules"
)

// precompiler performs the §4 elimination passes, allocating one fresh
// K(#) trigger per assignment and one Z(#) flag per branch.
type precompiler struct {
	sp      *bitmask.Space
	counter int
	// coin, when non-nil, compiles "X := rand" deterministically by
	// reading the partner's synthetic-coin bit.
	coin *junta.SyntheticCoin
}

func (p *precompiler) fresh(prefix string) bitmask.Var {
	p.counter++
	return p.sp.Bool(fmt.Sprintf("%s%d", prefix, p.counter))
}

// block lowers a statement sequence to a sequence of tree nodes.
func (p *precompiler) block(b lang.Block) ([]*tree, error) {
	var out []*tree
	for _, s := range b {
		nodes, err := p.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, nodes...)
	}
	return out, nil
}

func (p *precompiler) stmt(s lang.Stmt) ([]*tree, error) {
	switch st := s.(type) {
	case lang.Execute:
		rs, err := rules.Parse(p.sp, joinLines(st.Rules))
		if err != nil {
			return nil, err
		}
		return []*tree{{leaf: rs}}, nil

	case lang.Assign:
		return p.assign(st)

	case lang.IfExists:
		return p.ifExists(st)

	case lang.RepeatLog:
		children, err := p.block(st.Body)
		if err != nil {
			return nil, err
		}
		return []*tree{{children: children}}, nil

	case lang.Repeat:
		return nil, fmt.Errorf("nested unbounded repeat")
	}
	return nil, fmt.Errorf("unsupported statement %T", s)
}

// assign lowers "X := expr" to the Fig. 1 two-leaf trigger pattern.
func (p *precompiler) assign(st lang.Assign) ([]*tree, error) {
	x, ok := p.sp.LookupVar(st.Var)
	if !ok {
		return nil, fmt.Errorf("unknown variable %s", st.Var)
	}
	k := p.fresh("Kt")

	arm := rules.NewRuleset(p.sp)
	arm.Add(bitmask.IsNot(k), bitmask.True(), bitmask.Is(k), bitmask.True())

	fire := rules.NewRuleset(p.sp)
	kOn := bitmask.Is(k)
	setX := bitmask.And(bitmask.Is(x), bitmask.IsNot(k))
	clrX := bitmask.And(bitmask.IsNot(x), bitmask.IsNot(k))
	addSat := func(name string, rs ...rules.Rule) {
		kept := rs[:0]
		for _, r := range rs {
			if !r.G1.IsFalse() && !r.G2.IsFalse() {
				kept = append(kept, r)
			}
		}
		if len(kept) > 0 {
			fire.AddGroup(name, 1, kept...)
		}
	}
	switch st.Expr {
	case lang.OnExpr:
		fire.Add(kOn, bitmask.True(), setX, bitmask.True())
	case lang.OffExpr:
		fire.Add(kOn, bitmask.True(), clrX, bitmask.True())
	case lang.RandExpr:
		if p.coin != nil {
			// Deterministic variant: read the partner's synthetic-coin
			// bit ([AAE+17]); one group, disjoint responder guards.
			heads := p.coin.CoinFormula()
			fire.AddGroup("assignrand", 1,
				rules.MustNew(kOn, heads, setX, bitmask.True()),
				rules.MustNew(kOn, bitmask.Not(heads), clrX, bitmask.True()),
			)
			break
		}
		// Two overlapping singleton groups realize the fair coin: the
		// scheduler picks one uniformly; the trigger guarantees exactly
		// one of them fires per agent.
		fire.Add(kOn, bitmask.True(), setX, bitmask.True())
		fire.Add(kOn, bitmask.True(), clrX, bitmask.True())
	default:
		// Tautological or unsatisfiable Σ (e.g. "C | !C") leaves one side
		// of the pair with an unsatisfiable guard; drop it.
		sigma, err := rules.ParseFormula(p.sp, st.Expr)
		if err != nil {
			return nil, err
		}
		addSat("assign",
			rules.MustNew(bitmask.And(sigma, kOn), bitmask.True(), setX, bitmask.True()),
			rules.MustNew(bitmask.And(bitmask.Not(sigma), kOn), bitmask.True(), clrX, bitmask.True()),
		)
	}
	return []*tree{{leaf: arm}, {leaf: fire}}, nil
}

// ifExists lowers the branch to the Fig. 2 two-leaf evaluation followed by
// the Z-guarded zip of the two branches.
func (p *precompiler) ifExists(st lang.IfExists) ([]*tree, error) {
	cond, err := rules.ParseFormula(p.sp, st.Cond)
	if err != nil {
		return nil, err
	}
	z := p.fresh("Zf")

	clear := rules.NewRuleset(p.sp)
	clear.Add(bitmask.Is(z), bitmask.True(), bitmask.IsNot(z), bitmask.True())

	spread := rules.NewRuleset(p.sp)
	spread.AddGroup("exists", 1,
		// Ignition: a satisfying agent raises its own flag…
		rules.MustNew(bitmask.And(cond, bitmask.IsNot(z)), bitmask.True(), bitmask.Is(z), bitmask.True()),
		// …and the flag spreads epidemically (initiators disjoint on Z).
		rules.MustNew(bitmask.Is(z), bitmask.IsNot(z), bitmask.True(), bitmask.Is(z)),
	)

	thenNodes, err := p.block(st.Then)
	if err != nil {
		return nil, err
	}
	guardNodes(thenNodes, bitmask.Is(z))
	var elseNodes []*tree
	if len(st.Else) > 0 {
		elseNodes, err = p.block(st.Else)
		if err != nil {
			return nil, err
		}
		guardNodes(elseNodes, bitmask.IsNot(z))
	}
	zipped := zipNodes(thenNodes, elseNodes)
	return append([]*tree{{leaf: clear}, {leaf: spread}}, zipped...), nil
}

// guardNodes conjoins the guard onto every leaf ruleset of the subtrees.
func guardNodes(nodes []*tree, guard bitmask.Formula) {
	for _, n := range nodes {
		if n.isLeaf() {
			if n.leaf != nil {
				n.leaf = n.leaf.Guarded(guard)
			}
			continue
		}
		guardNodes(n.children, guard)
	}
}

// zipNodes merges the then- and else-branch node sequences position by
// position (the §4 bottom-up compaction): both branches' rules share the
// same windows, distinguished only by their Z(#) guards.
func zipNodes(a, b []*tree) []*tree {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]*tree, 0, n)
	for i := 0; i < n; i++ {
		var ta, tb *tree
		if i < len(a) {
			ta = a[i]
		}
		if i < len(b) {
			tb = b[i]
		}
		out = append(out, zipPair(ta, tb))
	}
	return out
}

func zipPair(a, b *tree) *tree {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	if a.isLeaf() && b.isLeaf() {
		switch {
		case a.leaf == nil:
			return b
		case b.leaf == nil:
			return a
		}
		return &tree{leaf: rules.Concat(a.leaf, b.leaf)}
	}
	// Normalize mixed shapes: a shallow leaf joins the other side's first
	// window one level down.
	if a.isLeaf() {
		a = &tree{children: []*tree{a}}
	}
	if b.isLeaf() {
		b = &tree{children: []*tree{b}}
	}
	return &tree{children: zipNodes(a.children, b.children)}
}
