package compile

import (
	"math"
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/lang"
	"popkit/internal/protocols"
)

func TestCompileGeometry(t *testing.T) {
	le, err := Compile(protocols.LeaderElection(), Options{Control: XPreReduced})
	if err != nil {
		t.Fatal(err)
	}
	if le.LMax != 1 {
		t.Errorf("LeaderElection l_max = %d, want 1", le.LMax)
	}
	if le.WMax < 8 || le.WMax > 12 {
		t.Errorf("LeaderElection w_max = %d, want ≈10", le.WMax)
	}
	if le.M != 4*le.WMax {
		t.Errorf("module = %d, want %d", le.M, 4*le.WMax)
	}
	if le.Leaves < 8 {
		t.Errorf("only %d emitted leaves", le.Leaves)
	}
	t.Log(le.Describe())

	maj, err := Compile(protocols.Majority(2), Options{Control: XTwoMeet})
	if err != nil {
		t.Fatal(err)
	}
	if maj.LMax != 2 {
		t.Errorf("Majority l_max = %d, want 2", maj.LMax)
	}
	t.Log(maj.Describe())
}

func TestCompileRejectsMultipleRepeatThreads(t *testing.T) {
	_, err := Compile(protocols.LeaderElectionExact(), Options{})
	if err != nil {
		// LeaderElectionExact has one repeat thread (Main) plus two
		// Forever threads — it must compile.
		t.Fatalf("LeaderElectionExact failed to compile: %v", err)
	}
	two := lang.MustParse(`
protocol Two
var A = off
var B = off

thread T1 uses A
  repeat:
    A := on

thread T2 uses B
  repeat:
    B := on
`)
	if _, err := Compile(two, Options{}); err == nil {
		t.Error("two repeat threads accepted")
	}
}

// TestCompiledInputsNeverWritten is the Definition 2.1 guarantee at the
// rule level: no emitted rule's update touches an input variable.
func TestCompiledInputsNeverWritten(t *testing.T) {
	maj, err := Compile(protocols.Majority(2), Options{Control: XCascade})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B"} {
		v, ok := maj.Space.LookupVar(name)
		if !ok {
			t.Fatalf("input %s missing", name)
		}
		var mLo, mHi uint64
		if v.Pos() < 64 {
			mLo = 1 << uint(v.Pos())
		} else {
			mHi = 1 << uint(v.Pos()-64)
		}
		for i, r := range maj.Rules.Rules {
			if r.U1.Touches(mLo, mHi) || r.U2.Touches(mLo, mHi) {
				t.Errorf("rule %d writes input %s: %s", i, name, r.String())
			}
		}
	}
}

// trivialProgram is a depth-1, single-leaf program: a one-way epidemic.
const trivialProgram = `
protocol Epidemic
var I = off output

thread Main uses I
  repeat:
    execute for >= 2 ln n rounds ruleset:
      (I) + (!I) -> (I) + (I)
`

// TestCompiledEpidemicEndToEnd runs a compiled single-leaf program under
// the raw uniform scheduler: the epidemic leaf is active during one clock
// window per cycle and must still complete.
func TestCompiledEpidemicEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end compiled run is long")
	}
	prog := lang.MustParse(trivialProgram)
	c, err := Compile(prog, Options{Control: XPreReduced})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	rng := engine.NewRNG(7)
	pop := c.NewPopulation(n, rng)
	// Seed one infected agent.
	iv, _ := c.Space.LookupVar("I")
	pop.SetAgent(0, iv.Set(pop.Agent(0), true))
	p := engine.CompileProtocol(c.Rules)
	r := engine.NewRunner(p, pop, rng)
	tr := r.Track("I", bitmask.Is(iv))
	budget := 600 * math.Log(n) * float64(c.M)
	rounds, ok := r.RunUntil(func(*engine.Runner) bool { return tr.Count() == n }, 5, budget)
	if !ok {
		t.Fatalf("compiled epidemic reached %d/%d within %.0f rounds", tr.Count(), n, budget)
	}
	t.Logf("compiled epidemic completed in %.0f rounds (m=%d)", rounds, c.M)
}

// TestCompiledLeaderElectionEndToEnd is the flagship test: the §3.1
// program compiled to a flat rule set (clock + gated leaves) elects a
// unique leader under the plain uniform-random pairwise scheduler.
func TestCompiledLeaderElectionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end compiled run is long")
	}
	prog := protocols.LeaderElection()
	c, err := Compile(prog, Options{Control: XPreReduced})
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	rng := engine.NewRNG(11)
	pop := c.NewPopulation(n, rng)
	p := engine.CompileProtocol(c.Rules)
	r := engine.NewRunner(p, pop, rng)
	lv, _ := c.Space.LookupVar("L")
	tr := r.Track("L", bitmask.Is(lv))
	if tr.Count() != n {
		t.Fatalf("all agents should start as leaders, got %d", tr.Count())
	}
	// Budget: ≈ 40 outer cycles; each cycle is m windows of Θ(slot·ln n).
	budget := 40.0 * float64(c.M) * 60 * math.Log(n)
	rounds, ok := r.RunUntil(func(*engine.Runner) bool { return tr.Count() == 1 }, 20, budget)
	if !ok {
		t.Fatalf("compiled LeaderElection: %d leaders after %.0f rounds", tr.Count(), budget)
	}
	t.Logf("compiled LeaderElection elected a unique leader in %.0f rounds (m=%d, rules=%d)",
		rounds, c.M, c.Rules.Len())
	// Run on: the leader must persist (w.h.p. stability of Thm 3.1).
	r.RunRounds(budget / 40)
	if got := tr.Count(); got != 1 {
		t.Errorf("leader count drifted to %d", got)
	}
}

func TestTimePathGuardShape(t *testing.T) {
	c, err := Compile(protocols.Majority(2), Options{Control: XPreReduced})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.LeafWindows) != c.Leaves {
		t.Fatalf("leaf window index out of sync")
	}
	for _, w := range c.LeafWindows {
		if len(w) != c.LMax {
			t.Errorf("leaf path %v has depth %d, want %d", w, len(w), c.LMax)
		}
		for _, idx := range w {
			if idx < 0 || idx >= c.WMax {
				t.Errorf("leaf path %v out of range", w)
			}
		}
	}
}

func TestPadProducesCompleteTree(t *testing.T) {
	// A mixed-depth program: one shallow leaf and one nested loop.
	prog := lang.MustParse(`
protocol Mixed
var A = off

thread Main uses A
  repeat:
    A := on
    repeat >= 2 ln n times:
      execute for >= 2 ln n rounds ruleset:
        (A) + (!A) -> (A) + (A)
`)
	c, err := Compile(prog, Options{Control: XPreReduced})
	if err != nil {
		t.Fatal(err)
	}
	if c.LMax != 2 {
		t.Fatalf("l_max = %d, want 2", c.LMax)
	}
	for _, w := range c.LeafWindows {
		if len(w) != 2 {
			t.Errorf("leaf %v not at depth 2 after padding", w)
		}
	}
}
