package compile

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"popkit/internal/lang"
)

// randProgram generates a random well-formed program over a small variable
// pool: assignments, if-exists branches, nested bounded loops and execute
// leaves, up to the given depth.
func randProgram(r *rand.Rand, depth int) *lang.Program {
	vars := []string{"A", "B", "C", "D"}
	var b strings.Builder
	b.WriteString("protocol Rnd\n")
	for _, v := range vars {
		init := "off"
		if r.Intn(2) == 0 {
			init = "on"
		}
		fmt.Fprintf(&b, "var %s = %s\n", v, init)
	}
	b.WriteString("\nthread Main\n  repeat:\n")
	emitRandBlock(r, &b, 2, depth, vars)
	return lang.MustParse(b.String())
}

func emitRandBlock(r *rand.Rand, b *strings.Builder, indent, depth int, vars []string) {
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		emitRandStmt(r, b, indent, depth, vars)
	}
}

func emitRandStmt(r *rand.Rand, b *strings.Builder, indent, depth int, vars []string) {
	ind := strings.Repeat("  ", indent)
	v := vars[r.Intn(len(vars))]
	w := vars[r.Intn(len(vars))]
	switch choice := r.Intn(5); {
	case choice == 0:
		exprs := []string{"on", "off", "rand", w, "!" + w, v + " & " + w, v + " | !" + w}
		fmt.Fprintf(b, "%s%s := %s\n", ind, v, exprs[r.Intn(len(exprs))])
	case choice == 1 && depth > 0:
		fmt.Fprintf(b, "%sif exists (%s):\n", ind, v)
		emitRandBlock(r, b, indent+1, depth-1, vars)
		if r.Intn(2) == 0 {
			fmt.Fprintf(b, "%selse:\n", ind)
			emitRandBlock(r, b, indent+1, depth-1, vars)
		}
	case choice == 2 && depth > 0:
		fmt.Fprintf(b, "%srepeat >= %d ln n times:\n", ind, 1+r.Intn(3))
		emitRandBlock(r, b, indent+1, depth-1, vars)
	default:
		fmt.Fprintf(b, "%sexecute for >= %d ln n rounds ruleset:\n", ind, 1+r.Intn(3))
		fmt.Fprintf(b, "%s  (%s) + (!%s) -> (%s) + (%s)\n", ind, v, v, v, v)
	}
}

// TestCompileRandomPrograms: every well-formed program compiles to a valid
// ruleset with consistent geometry — the compiler's structural invariants
// hold across the language, not just on the curated examples.
func TestCompileRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		prog := randProgram(r, 2)
		c, err := Compile(prog, Options{Control: XPreReduced})
		if err != nil {
			t.Fatalf("trial %d: %v\nsource:\n%s", trial, err, prog.Source())
		}
		if err := c.Rules.Validate(); err != nil {
			t.Fatalf("trial %d: emitted rules invalid: %v", trial, err)
		}
		if c.M%4 != 0 || c.M < 8 {
			t.Errorf("trial %d: module %d", trial, c.M)
		}
		for _, w := range c.LeafWindows {
			if len(w) != c.LMax {
				t.Errorf("trial %d: leaf %v at depth %d, want %d", trial, w, len(w), c.LMax)
			}
			for _, idx := range w {
				if idx < 0 || idx >= c.WMax {
					t.Errorf("trial %d: leaf %v exceeds width %d", trial, w, c.WMax)
				}
			}
		}
		if c.Space.NumBitsUsed() > 128 {
			t.Errorf("trial %d: state word overflow", trial)
		}
	}
}

// TestCompileDeterministicCoins: with synthetic coins every "rand"
// assignment compiles to a single deterministic group, and the compiled
// population still runs.
func TestCompileDeterministicCoins(t *testing.T) {
	prog := lang.MustParse(`
protocol Coins
var F = off output

thread Main uses F
  repeat:
    F := rand
`)
	c, err := Compile(prog, Options{Control: XPreReduced, DeterministicCoins: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Rules.Validate(); err != nil {
		t.Fatal(err)
	}
	// The coin-toggle background group must be present.
	found := false
	for _, g := range c.Rules.Groups {
		if strings.Contains(g.Name, "coinflip") {
			found = true
		}
	}
	if !found {
		t.Error("synthetic coin rules missing")
	}
}
