package junta

import (
	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// Geometric is the fast junta-election comparator (Proposition 5.4, in the
// spirit of [GS18]). Every agent draws a geometric rank by repeated fair
// flips — one flip per interaction while still flipping, realized as two
// equal-weight scheduler groups — then the maximum rank seen propagates
// epidemically, and agents whose own rank falls below the running maximum
// leave the junta (clear X). The junta is exactly the set of agents holding
// the global maximum rank: it is never empty, and its size is
// O(polylog n) ≤ n^(1−ε) w.h.p. after O(log n) rounds.
type Geometric struct {
	X        bitmask.Var
	Flipping bitmask.Var
	Rank     bitmask.Field // own geometric rank
	Max      bitmask.Field // largest rank seen
	MaxLevel int

	rs *rules.Ruleset
}

// NewGeometric builds the junta election with ranks capped at maxLevel
// (use ≳ log2 n + 4; the cap only matters with vanishing probability).
func NewGeometric(sp *bitmask.Space, prefix string, x bitmask.Var, maxLevel int) *Geometric {
	if maxLevel < 1 {
		panic("junta: maxLevel must be ≥ 1")
	}
	g := &Geometric{
		X:        x,
		Flipping: sp.Bool(prefix + "Fl"),
		Rank:     sp.Field(prefix+"Rk", uint64(maxLevel)),
		Max:      sp.Field(prefix+"Mx", uint64(maxLevel)),
		MaxLevel: maxLevel,
	}
	g.rs = rules.NewRuleset(sp)

	// Coin flips: while flipping, each interaction either advances the
	// rank (heads) or stops (tails) — two equal-weight groups realize the
	// fair coin. Rank and Max advance together while flipping.
	heads := make([]rules.Rule, 0, maxLevel)
	for l := 0; l < maxLevel; l++ {
		heads = append(heads, rules.MustNew(
			bitmask.And(bitmask.Is(g.Flipping), bitmask.FieldIs(g.Rank, uint64(l))),
			bitmask.True(),
			bitmask.FieldIs(g.Rank, uint64(l+1)),
			bitmask.True()))
	}
	// At the cap, heads also stops.
	heads = append(heads, rules.MustNew(
		bitmask.And(bitmask.Is(g.Flipping), bitmask.FieldIs(g.Rank, uint64(maxLevel))),
		bitmask.True(),
		bitmask.IsNot(g.Flipping),
		bitmask.True()))
	g.rs.AddGroup(prefix+"heads", 1, heads...)
	g.rs.Add(bitmask.Is(g.Flipping), bitmask.True(), bitmask.IsNot(g.Flipping), bitmask.True())

	// Feed the agent's own rank into its running maximum (kept separate
	// from the heads rule so concurrent propagation can never lower Max).
	ownmax := make([]rules.Rule, 0, maxLevel*maxLevel/2)
	for l := 1; l <= maxLevel; l++ {
		for m := 0; m < l; m++ {
			ownmax = append(ownmax, rules.MustNew(
				bitmask.And(bitmask.FieldIs(g.Rank, uint64(l)), bitmask.FieldIs(g.Max, uint64(m))),
				bitmask.True(),
				bitmask.FieldIs(g.Max, uint64(l)),
				bitmask.True()))
		}
	}
	g.rs.AddGroup(prefix+"ownmax", 1, ownmax...)

	// Max propagation: adopt any larger observed maximum.
	prop := make([]rules.Rule, 0, maxLevel*maxLevel)
	for own := 0; own <= maxLevel; own++ {
		for seen := own + 1; seen <= maxLevel; seen++ {
			prop = append(prop, rules.MustNew(
				bitmask.FieldIs(g.Max, uint64(own)),
				bitmask.FieldIs(g.Max, uint64(seen)),
				bitmask.FieldIs(g.Max, uint64(seen)),
				bitmask.True()))
		}
	}
	g.rs.AddGroup(prefix+"maxprop", 1, prop...)

	// Junta maintenance: an agent whose FINAL rank is below the running
	// maximum leaves the junta. The ¬Flipping gate is load-bearing: an agent
	// still flipping may trail a transiently-higher Max and yet finish with
	// the global maximum rank — pruning it mid-flip can empty the junta
	// entirely (observed at n=512: X hits 0, and every oscillator downstream
	// of X as its source set stalls). A stopped agent's rank is final, so
	// the global-max holder never matches Rank < Max and X ≥ 1 holds.
	leave := make([]rules.Rule, 0, maxLevel*maxLevel)
	for own := 0; own <= maxLevel; own++ {
		for seen := own + 1; seen <= maxLevel; seen++ {
			leave = append(leave, rules.MustNew(
				bitmask.And(bitmask.Is(g.X), bitmask.IsNot(g.Flipping), bitmask.FieldIs(g.Rank, uint64(own)), bitmask.FieldIs(g.Max, uint64(seen))),
				bitmask.True(),
				bitmask.IsNot(g.X),
				bitmask.True()))
		}
	}
	g.rs.AddGroup(prefix+"leave", 1, leave...)
	return g
}

// Rules returns the process ruleset.
func (g *Geometric) Rules() *rules.Ruleset { return g.rs }

// InitAgent marks the agent as a flipping junta candidate of rank 0.
func (g *Geometric) InitAgent(s bitmask.State) bitmask.State {
	s = g.X.Set(s, true)
	return g.Flipping.Set(s, true)
}
