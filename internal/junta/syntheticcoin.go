package junta

import (
	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// SyntheticCoin implements the paper's closing remark (§1.1, "Extensions of
// results"): randomized protocols can be made deterministic by extracting
// coin flips from the randomness of the fair scheduler — the synthetic-coin
// technique of [AAE+17]. Every agent carries one bit that it toggles on
// every interaction it initiates; because interaction partners are chosen
// uniformly at random, reading the *partner's* toggle bit is close to a
// fair coin flip (the bias decays geometrically with the number of
// intervening interactions).
//
// Consumers read the coin by guarding a rule pair on the responder's bit:
//
//	▷ (trigger) + (CoinFormula)  → (outcome-heads) + (.)
//	▷ (trigger) + (!CoinFormula) → (outcome-tails) + (.)
//
// which is a deterministic transition function — the randomness comes
// entirely from the scheduler.
type SyntheticCoin struct {
	Bit bitmask.Var
	rs  *rules.Ruleset
}

// NewSyntheticCoin allocates the coin bit and its toggle rules.
func NewSyntheticCoin(sp *bitmask.Space, prefix string) *SyntheticCoin {
	c := &SyntheticCoin{Bit: sp.Bool(prefix + "Coin")}
	c.rs = rules.NewRuleset(sp)
	c.rs.AddGroup(prefix+"coinflip", 1,
		rules.MustNew(bitmask.Is(c.Bit), bitmask.True(), bitmask.IsNot(c.Bit), bitmask.True()),
		rules.MustNew(bitmask.IsNot(c.Bit), bitmask.True(), bitmask.Is(c.Bit), bitmask.True()),
	)
	return c
}

// Rules returns the toggle ruleset, to be composed with the host protocol.
func (c *SyntheticCoin) Rules() *rules.Ruleset { return c.rs }

// CoinFormula is the formula reading the coin from an interaction partner.
func (c *SyntheticCoin) CoinFormula() bitmask.Formula { return bitmask.Is(c.Bit) }

// InitAgent seeds the coin bit from the agent index parity — any fixed
// initialization works; the toggling decorrelates it within O(1) rounds.
func (c *SyntheticCoin) InitAgent(s bitmask.State, i int) bitmask.State {
	return c.Bit.Set(s, i%2 == 1)
}
