package junta

import (
	"math"
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/rules"
)

func TestTwoMeetMonotoneAndPositive(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	tm := NewTwoMeet(sp, x)
	p := engine.CompileProtocol(tm.Rules())
	const n = 500
	pop := engine.NewDenseInit(n, func(int) bitmask.State {
		return tm.InitAgent(bitmask.State{})
	})
	r := engine.NewRunner(p, pop, engine.NewRNG(1))
	tr := r.Track("X", bitmask.Is(x))
	last := tr.Count()
	if last != n {
		t.Fatalf("initial #X = %d", last)
	}
	for i := 0; i < 200; i++ {
		r.RunRounds(1)
		now := tr.Count()
		if now > last {
			t.Fatal("#X increased")
		}
		if now < 1 {
			t.Fatal("#X reached 0")
		}
		last = now
	}
}

// TestTwoMeetReductionTime checks the Proposition 5.3 time bound shape:
// #X drops below n^(1-ε) within O(n^ε) rounds. For ε = 1/2: below √n
// within O(√n) rounds.
func TestTwoMeetReductionTime(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	tm := NewTwoMeet(sp, x)
	p := engine.CompileProtocol(tm.Rules())
	const n = 4096
	sqrtN := math.Sqrt(n)
	var within, total int
	for seed := uint64(0); seed < 5; seed++ {
		pop := engine.NewDenseInit(n, func(int) bitmask.State {
			return tm.InitAgent(bitmask.State{})
		})
		r := engine.NewRunner(p, pop, engine.NewRNG(seed))
		tr := r.Track("X", bitmask.Is(x))
		rounds, ok := r.RunUntil(func(*engine.Runner) bool {
			return float64(tr.Count()) < sqrtN
		}, 1, 100*sqrtN)
		if !ok {
			t.Fatalf("seed %d: #X did not reach √n within %.0f rounds", seed, 100*sqrtN)
		}
		total++
		if rounds < 20*sqrtN {
			within++
		}
	}
	if within < total {
		t.Errorf("only %d/%d runs reduced #X below √n within 20√n rounds", within, total)
	}
}

func TestCascadePolylogReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	const n = 10000
	for _, k := range []int{1, 2} {
		sp := bitmask.NewSpace()
		x := sp.Bool("X")
		c := NewCascade(sp, "J", x, k)
		p := engine.CompileProtocol(c.Rules())
		pop := engine.NewDenseInit(n, func(int) bitmask.State {
			return c.InitAgent(bitmask.State{})
		})
		r := engine.NewRunner(p, pop, engine.NewRNG(7))
		trX := r.Track("X", bitmask.Is(x))
		threshold := math.Pow(n, 0.5)
		logn := math.Log(n)
		budget := 400 * math.Pow(logn, float64(k)) // generous polylog budget
		rounds, ok := r.RunUntil(func(*engine.Runner) bool {
			return float64(trX.Count()) < threshold
		}, 1, budget)
		if !ok {
			t.Errorf("k=%d: #X=%d not below n^0.5 within %.0f rounds", k, trX.Count(), budget)
			continue
		}
		t.Logf("k=%d: #X < √n after %.0f rounds (%.1f·log^%d n)", k, rounds, rounds/math.Pow(logn, float64(k)), k)
	}
}

// TestCascadeXSurvives: after #X drops below the threshold, it must stay
// positive for a while (the clock hierarchy needs the window).
func TestCascadeXSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	const n = 10000
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	c := NewCascade(sp, "J", x, 2)
	p := engine.CompileProtocol(c.Rules())
	pop := engine.NewDenseInit(n, func(int) bitmask.State {
		return c.InitAgent(bitmask.State{})
	})
	r := engine.NewRunner(p, pop, engine.NewRNG(3))
	trX := r.Track("X", bitmask.Is(x))
	threshold := math.Pow(n, 0.5)
	_, ok := r.RunUntil(func(*engine.Runner) bool {
		return float64(trX.Count()) < threshold
	}, 1, 1e6)
	if !ok {
		t.Fatal("cascade never reduced #X")
	}
	// Survive for at least a few multiples of log² n more rounds.
	survival := 5 * math.Pow(math.Log(n), 2)
	r.RunRounds(survival)
	if trX.Count() == 0 {
		t.Errorf("#X hit 0 within %.0f rounds of crossing the threshold", survival)
	}
}

func TestGeometricJunta(t *testing.T) {
	const n = 8192
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	g := NewGeometric(sp, "G", x, 20)
	p := engine.CompileProtocol(g.Rules())
	for seed := uint64(0); seed < 3; seed++ {
		pop := engine.NewDenseInit(n, func(int) bitmask.State {
			return g.InitAgent(bitmask.State{})
		})
		r := engine.NewRunner(p, pop, engine.NewRNG(seed))
		trX := r.Track("X", bitmask.Is(x))
		trFlip := r.Track("Fl", bitmask.Is(g.Flipping))
		budget := 60 * math.Log(n)
		r.RunRounds(budget)
		if trFlip.Count() > 0 {
			t.Errorf("seed %d: %d agents still flipping after %.0f rounds", seed, trFlip.Count(), budget)
		}
		junta := trX.Count()
		if junta < 1 {
			t.Fatalf("seed %d: junta empty", seed)
		}
		// Junta holds the max geometric rank: tiny compared to n^(1-ε).
		if float64(junta) > math.Pow(n, 0.75) {
			t.Errorf("seed %d: junta size %d exceeds n^0.75", seed, junta)
		}
		// The junta is exactly the set of max-rank agents.
		maxRank := uint64(0)
		pop.ForEach(func(_ int, s bitmask.State) {
			if v := g.Rank.Get(s); v > maxRank {
				maxRank = v
			}
		})
		bad := 0
		pop.ForEach(func(_ int, s bitmask.State) {
			inJunta := x.Get(s)
			if inJunta != (g.Rank.Get(s) == maxRank) {
				bad++
			}
		})
		if bad > 0 {
			t.Errorf("seed %d: %d agents with junta flag inconsistent with max rank", seed, bad)
		}
	}
}

func TestCascadeValidation(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	defer func() {
		if recover() == nil {
			t.Error("k=0 cascade did not panic")
		}
	}()
	NewCascade(sp, "J", x, 0)
}

func TestRulesetsValidate(t *testing.T) {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	if err := NewTwoMeet(sp, x).Rules().Validate(); err != nil {
		t.Errorf("TwoMeet: %v", err)
	}
	sp2 := bitmask.NewSpace()
	x2 := sp2.Bool("X")
	if err := NewCascade(sp2, "J", x2, 3).Rules().Validate(); err != nil {
		t.Errorf("Cascade: %v", err)
	}
	sp3 := bitmask.NewSpace()
	x3 := sp3.Bool("X")
	if err := NewGeometric(sp3, "G", x3, 10).Rules().Validate(); err != nil {
		t.Errorf("Geometric: %v", err)
	}
}

func TestSyntheticCoinFairness(t *testing.T) {
	sp := bitmask.NewSpace()
	coin := NewSyntheticCoin(sp, "S")
	// Compose the toggle rules with a sampler that records the partner's
	// bit into the initiator's Heads flag.
	heads := sp.Bool("H")
	sampler := coin.Rules().Clone()
	sampler.AddGroup("sample", 1,
		// (.) + (coin) → (H) + (.) ; (.) + (!coin) → (!H) + (.)
		mustRule(bitmask.True(), coin.CoinFormula(), bitmask.Is(heads), bitmask.True()),
		mustRule(bitmask.True(), bitmask.Not(coin.CoinFormula()), bitmask.IsNot(heads), bitmask.True()),
	)
	p := engine.CompileProtocol(sampler)
	const n = 2000
	pop := engine.NewDenseInit(n, func(i int) bitmask.State {
		return coin.InitAgent(bitmask.State{}, i)
	})
	r := engine.NewRunner(p, pop, engine.NewRNG(5))
	tr := r.Track("H", bitmask.Is(heads))
	// After a few rounds, roughly half the population's last sample was
	// heads; bounded bias is the [AAE+17] guarantee.
	var acc float64
	const probes = 50
	for i := 0; i < probes; i++ {
		r.RunRounds(2)
		acc += float64(tr.Count()) / n
	}
	mean := acc / probes
	if mean < 0.40 || mean > 0.60 {
		t.Errorf("synthetic coin heads rate = %.3f, want ≈ 0.5", mean)
	}
}

func mustRule(a, b, c, d bitmask.Formula) rules.Rule {
	return rules.MustNew(a, b, c, d)
}
