// Package junta implements the control-state (X) reduction processes of
// §5.2's "Controlling |X|" paragraphs. The phase clocks operate correctly
// while 1 ≤ #X ≤ n^(1−ε); these processes bring #X into that range:
//
//   - TwoMeet (Proposition 5.3): the always-correct reducer. #X never
//     increases, never reaches 0, and drops below n^(1−ε) within O(n^ε)
//     rounds.
//   - Cascade (Proposition 5.5): the w.h.p. reducer. A k-level cascade
//     drives #X below n^(1−ε) within polylogarithmic time; #X eventually
//     hits 0, but stays positive long enough for the clock hierarchy to
//     complete its work.
//   - Geometric (Proposition 5.4 comparator, in the spirit of [GS18]):
//     junta election via geometric ranks and max propagation, reaching
//     #X ≤ n^(1−ε) in O(log n) rounds with super-constant states. (GS18
//     achieve O(log log n) states; this implementation uses O(log n)
//     states — the rank field — which suffices for the time-bound
//     comparison; see DESIGN.md, "Substitutions".)
package junta

import (
	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// TwoMeet is the Proposition 5.3 process: ▷ (X) + (X) → (¬X) + (X).
type TwoMeet struct {
	X  bitmask.Var
	rs *rules.Ruleset
}

// NewTwoMeet builds the two-meet reducer over the shared control variable.
func NewTwoMeet(sp *bitmask.Space, x bitmask.Var) *TwoMeet {
	t := &TwoMeet{X: x, rs: rules.NewRuleset(sp)}
	t.rs.Add(bitmask.Is(x), bitmask.Is(x), bitmask.IsNot(x), bitmask.Is(x))
	return t
}

// Rules returns the process ruleset.
func (t *TwoMeet) Rules() *rules.Ruleset { return t.rs }

// InitAgent marks the agent as a control agent (all agents start in X).
func (t *TwoMeet) InitAgent(s bitmask.State) bitmask.State {
	return t.X.Set(s, true)
}

// Cascade is the Proposition 5.5 process. A helper signal Z decays
// polynomially — an agent drops Z after k+1 consecutive meetings with Z
// agents, counted in unary flags Z_1 … Z_k that reset on meeting a non-Z
// agent — which realizes d|Z|/dt ≈ −|Z|·(|Z|/n)^k and |Z| = Θ(n·t^(−1/k)).
// The control signal X then decays super-polynomially: an agent drops X
// after k consecutive meetings with Z agents (flags X_1 … X_{k−1}),
// realizing d|X|/dt ≈ −|X|·(|Z|/n)^k and |X| ≈ n·exp(−t^(1/k)) — below
// n^(1−ε) within polylog(n) rounds for any fixed ε.
type Cascade struct {
	X  bitmask.Var
	Z  bitmask.Var
	Zl []bitmask.Var // Z_1 … Z_k
	Xl []bitmask.Var // X_1 … X_{k−1}
	K  int

	rs *rules.Ruleset
}

// NewCascade builds the k-level cascade (k ≥ 1) over the shared control
// variable x.
func NewCascade(sp *bitmask.Space, prefix string, x bitmask.Var, k int) *Cascade {
	if k < 1 {
		panic("junta: cascade level must be ≥ 1")
	}
	c := &Cascade{X: x, Z: sp.Bool(prefix + "Z"), K: k}
	for i := 1; i <= k; i++ {
		c.Zl = append(c.Zl, sp.Bool(prefix+"Z"+itoa(i)))
	}
	for i := 1; i <= k-1; i++ {
		c.Xl = append(c.Xl, sp.Bool(prefix+"X"+itoa(i)))
	}
	c.rs = rules.NewRuleset(sp)

	// Reset rule: meeting a non-Z agent clears all cascade counters.
	clearAll := make([]bitmask.Formula, 0, 2*k)
	for _, v := range c.Zl {
		clearAll = append(clearAll, bitmask.IsNot(v))
	}
	for _, v := range c.Xl {
		clearAll = append(clearAll, bitmask.IsNot(v))
	}
	c.rs.Add(bitmask.True(), bitmask.IsNot(c.Z), bitmask.And(clearAll...), bitmask.True())

	// Z decay: k+1 consecutive Z-meetings drop Z.
	noZFlags := make([]bitmask.Formula, 0, k)
	for _, v := range c.Zl {
		noZFlags = append(noZFlags, bitmask.IsNot(v))
	}
	c.rs.Add(
		bitmask.And(append([]bitmask.Formula{bitmask.Is(c.Z)}, noZFlags...)...),
		bitmask.Is(c.Z),
		bitmask.Is(c.Zl[0]),
		bitmask.True())
	for i := 0; i < k-1; i++ {
		c.rs.Add(
			bitmask.Is(c.Zl[i]), bitmask.Is(c.Z),
			bitmask.And(bitmask.IsNot(c.Zl[i]), bitmask.Is(c.Zl[i+1])),
			bitmask.True())
	}
	c.rs.Add(
		bitmask.Is(c.Zl[k-1]), bitmask.Is(c.Z),
		bitmask.And(bitmask.IsNot(c.Z), bitmask.IsNot(c.Zl[k-1])),
		bitmask.True())

	// X decay: k consecutive Z-meetings drop X.
	if k == 1 {
		c.rs.Add(bitmask.Is(x), bitmask.Is(c.Z), bitmask.IsNot(x), bitmask.True())
	} else {
		noXFlags := make([]bitmask.Formula, 0, k-1)
		for _, v := range c.Xl {
			noXFlags = append(noXFlags, bitmask.IsNot(v))
		}
		c.rs.Add(
			bitmask.And(append([]bitmask.Formula{bitmask.Is(x)}, noXFlags...)...),
			bitmask.Is(c.Z),
			bitmask.Is(c.Xl[0]),
			bitmask.True())
		for i := 0; i < k-2; i++ {
			c.rs.Add(
				bitmask.Is(c.Xl[i]), bitmask.Is(c.Z),
				bitmask.And(bitmask.IsNot(c.Xl[i]), bitmask.Is(c.Xl[i+1])),
				bitmask.True())
		}
		c.rs.Add(
			bitmask.Is(c.Xl[k-2]), bitmask.Is(c.Z),
			bitmask.And(bitmask.IsNot(x), bitmask.IsNot(c.Xl[k-2])),
			bitmask.True())
	}
	return c
}

// Rules returns the process ruleset.
func (c *Cascade) Rules() *rules.Ruleset { return c.rs }

// InitAgent marks the agent with both X and Z set and all counters clear.
func (c *Cascade) InitAgent(s bitmask.State) bitmask.State {
	s = c.X.Set(s, true)
	return c.Z.Set(s, true)
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
