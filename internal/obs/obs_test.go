package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Fatalf("nil counter Load = %d, want 0", c.Load())
	}
	var g *GaugeInt
	g.Add(3)
	g.Set(7)
	if g.Load() != 0 {
		t.Fatalf("nil gauge Load = %d, want 0", g.Load())
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	if h.Count() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil histogram recorded an observation")
	}
}

func TestCounterGaugeValues(t *testing.T) {
	var c Counter
	c.Add(2)
	c.Inc()
	if got := c.Load(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	var g GaugeInt
	g.Add(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	g.Set(-1)
	if got := g.Load(); got != -1 {
		t.Fatalf("gauge = %d, want -1", got)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket [64,128) µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond) // bucket [32768,65536) µs
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50MS != 0.128 {
		t.Fatalf("p50 = %v, want 0.128", s.P50MS)
	}
	if s.P99MS != 65.536 {
		t.Fatalf("p99 = %v, want 65.536", s.P99MS)
	}
	if s.P95MS != 65.536 {
		t.Fatalf("p95 = %v, want 65.536", s.P95MS)
	}
	if s.MeanMS <= 0 {
		t.Fatalf("mean = %v, want > 0", s.MeanMS)
	}
	if len(s.BucketsUS) != 2 {
		t.Fatalf("buckets = %v, want 2 entries", s.BucketsUS)
	}
}

func TestHistogramClamping(t *testing.T) {
	var h Histogram
	h.Observe(0)               // clamps to 1 µs, bucket 0
	h.Observe(300 * time.Hour) // beyond the top bucket, clamps to last
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	s := h.Snapshot()
	if _, ok := s.BucketsUS["2"]; !ok {
		t.Fatalf("missing bottom bucket: %v", s.BucketsUS)
	}
}

func TestRegistryIdempotentAndShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("popkit_test_total", "help")
	b := r.Counter("popkit_test_total", "help")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Add(4)
	if b.Load() != 4 {
		t.Fatal("re-registered counter does not share state")
	}
	l1 := r.Counter("popkit_labeled_total", "h", L("x", "1"))
	l2 := r.Counter("popkit_labeled_total", "h", L("x", "2"))
	if l1 == l2 {
		t.Fatal("distinct label sets share a series")
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("popkit_clash", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("popkit_clash", "h")
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	if r.Counter("x", "h") != nil {
		t.Fatal("nil registry returned a counter")
	}
	if r.Gauge("x", "h") != nil {
		t.Fatal("nil registry returned a gauge")
	}
	if r.Histogram("x", "h") != nil {
		t.Fatal("nil registry returned a histogram")
	}
	r.GaugeFunc("x", "h", func() float64 { return 0 })
	if err := r.WritePromTo(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestWritePromTo(t *testing.T) {
	r := NewRegistry()
	r.Counter("popkit_jobs_total", "Jobs started.").Add(7)
	r.Counter("popkit_rejects_total", "Rejected.", L("reason", "full")).Add(2)
	r.Counter("popkit_rejects_total", "Rejected.", L("reason", "invalid")).Add(1)
	r.Gauge("popkit_inflight", "In-flight workers.").Set(3)
	r.GaugeFunc("popkit_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	h := r.Histogram("popkit_latency_seconds", "Request latency.", L("endpoint", "simulate"))
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePromTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP popkit_jobs_total Jobs started.",
		"# TYPE popkit_jobs_total counter",
		"popkit_jobs_total 7",
		`popkit_rejects_total{reason="full"} 2`,
		`popkit_rejects_total{reason="invalid"} 1`,
		"# TYPE popkit_inflight gauge",
		"popkit_inflight 3",
		"popkit_uptime_seconds 1.5",
		"# TYPE popkit_latency_seconds histogram",
		`popkit_latency_seconds_bucket{endpoint="simulate",le="+Inf"} 2`,
		`popkit_latency_seconds_count{endpoint="simulate"} 2`,
		`popkit_latency_seconds_sum{endpoint="simulate"} 0.0031`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: the 3 ms observation lands in [2048,4096) µs, so
	// le="0.004096" must already include both samples.
	if !strings.Contains(out, `popkit_latency_seconds_bucket{endpoint="simulate",le="0.004096"} 2`) {
		t.Fatalf("histogram buckets not cumulative:\n%s", out)
	}

	// Rendering twice must produce identical output (stable ordering).
	var sb2 strings.Builder
	if err := r.WritePromTo(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("two renders of an unchanged registry differ")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("popkit_conc_total", "h").Inc()
				r.Gauge("popkit_conc_gauge", "h").Add(1)
				r.Histogram("popkit_conc_seconds", "h", L("w", "x")).Observe(time.Microsecond)
			}
		}(w)
	}
	// Render concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePromTo(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("popkit_conc_total", "h").Load(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("popkit_conc_seconds", "h", L("w", "x")).Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestLabelKeyCanonical(t *testing.T) {
	a := labelKey([]Label{L("b", "2"), L("a", "1")})
	b := labelKey([]Label{L("a", "1"), L("b", "2")})
	if a != b {
		t.Fatalf("label key order-sensitive: %q vs %q", a, b)
	}
	if labelKey(nil) != "" {
		t.Fatal("empty label key not empty")
	}
}
