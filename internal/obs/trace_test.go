package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceEmitAndEvents(t *testing.T) {
	tr := NewTrace(10)
	tr.Emit(Event{Kind: "phase-tick", Level: 1, Phase: 2, Rounds: 3.5, Value: 42})
	tr.Emit(Event{Kind: "iteration", Iter: 1, Rounds: 7})
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	evs := tr.Events()
	if evs[0].Kind != "phase-tick" || evs[0].Value != 42 || evs[1].Iter != 1 {
		t.Fatalf("unexpected events: %+v", evs)
	}
	// Events returns a copy.
	evs[0].Kind = "mutated"
	if tr.Events()[0].Kind != "phase-tick" {
		t.Fatal("Events returned a live reference")
	}
}

func TestTraceOverflowDropsNewest(t *testing.T) {
	tr := NewTrace(2)
	tr.Emit(Event{Kind: "a"})
	tr.Emit(Event{Kind: "b"})
	tr.Emit(Event{Kind: "c"})
	tr.Emit(Event{Kind: "d"})
	if tr.Len() != 2 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 2/2", tr.Len(), tr.Dropped())
	}
	if evs := tr.Events(); evs[0].Kind != "a" || evs[1].Kind != "b" {
		t.Fatalf("head not preserved: %+v", evs)
	}
	var sb strings.Builder
	if err := tr.WriteNDJSON(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("ndjson lines = %d, want 3 (2 events + dropped marker)", len(lines))
	}
	var last Event
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != "dropped" || last.Value != 2 {
		t.Fatalf("dropped marker = %+v", last)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Emit(Event{Kind: "x"})
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil trace not inert")
	}
	if err := tr.WriteNDJSON(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDefaultCap(t *testing.T) {
	tr := NewTrace(0)
	if tr.cap != DefaultTraceCap {
		t.Fatalf("default cap = %d, want %d", tr.cap, DefaultTraceCap)
	}
}

func TestTraceNDJSONWellFormed(t *testing.T) {
	tr := NewTrace(100)
	tr.Emit(Event{Kind: "count", Rounds: 1.25, Counts: map[string]int64{"X": 12}})
	var sb strings.Builder
	if err := tr.WriteNDJSON(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	n := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", n, err)
		}
		if e.Counts["X"] != 12 {
			t.Fatalf("counts lost: %+v", e)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("lines = %d, want 1", n)
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carried a trace")
	}
	if FromContext(nil) != nil {
		t.Fatal("nil context carried a trace")
	}
	tr := NewTrace(4)
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context round-trip")
	}
	// Attaching nil leaves the context unchanged.
	if ctx2 := WithTrace(context.Background(), nil); FromContext(ctx2) != nil {
		t.Fatal("nil trace attached")
	}
}

func TestTraceConcurrentEmit(t *testing.T) {
	tr := NewTrace(100000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Emit(Event{Kind: "leaf", Leaf: i})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8000 {
		t.Fatalf("len = %d, want 8000", tr.Len())
	}
}

func TestRuleStats(t *testing.T) {
	s := NewRuleStats(3)
	s.Fire(0, 1)
	s.Fire(2, 5)
	s.Fire(2, 1)
	s.Fire(-1, 1) // out of range: ignored
	s.Fire(3, 1)  // out of range: ignored
	if got := s.Fired(); got[0] != 1 || got[1] != 0 || got[2] != 6 {
		t.Fatalf("fired = %v", got)
	}
	if s.Total() != 7 {
		t.Fatalf("total = %d, want 7", s.Total())
	}
	// Fired returns a copy.
	s.Fired()[0] = 99
	if s.Fired()[0] != 1 {
		t.Fatal("Fired returned live slice")
	}
	var nilStats *RuleStats
	nilStats.Fire(0, 1)
	if nilStats.Fired() != nil || nilStats.Total() != 0 {
		t.Fatal("nil RuleStats not inert")
	}
}

// TestNoOpOverheadGuard proves the disabled instrumentation path is cheap:
// 10M nil-receiver Fire calls must finish in well under a second (the real
// cost is ~1 ns/call; the generous bound keeps CI machines honest without
// flaking).
func TestNoOpOverheadGuard(t *testing.T) {
	var s *RuleStats
	start := time.Now()
	for i := 0; i < 10_000_000; i++ {
		s.Fire(i&7, 1)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("10M no-op Fire calls took %v — no-op path is not cheap", el)
	}
}

func BenchmarkRuleStatsFireNil(b *testing.B) {
	var s *RuleStats
	for i := 0; i < b.N; i++ {
		s.Fire(i&7, 1)
	}
}

func BenchmarkRuleStatsFire(b *testing.B) {
	s := NewRuleStats(8)
	for i := 0; i < b.N; i++ {
		s.Fire(i&7, 1)
	}
}

func BenchmarkTraceEmit(b *testing.B) {
	tr := NewTrace(1 << 20)
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: "leaf", Leaf: i})
	}
}
