// Package obs is popkit's zero-dependency instrumentation layer: atomic
// counters and gauges, fixed-bucket latency histograms, a process-wide
// metric registry with Prometheus text exposition, and a bounded trace
// ring buffer for span/event timelines (trace.go).
//
// Everything is designed for the hot kernel path: the no-op default is a
// nil receiver, so an uninstrumented runner pays exactly one predictable
// branch per firing and instrumentation never allocates per event on the
// metrics side. Nothing in this package consumes RNG state — enabling
// tracing can never perturb a simulation's random stream.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic atomic counter. The zero value is ready to use;
// all methods are nil-safe no-ops so optional instrumentation costs one
// branch when absent.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// GaugeInt is a settable signed gauge (queue depth, in-flight workers).
// The zero value is ready to use; methods are nil-safe.
type GaugeInt struct {
	v atomic.Int64
}

// Add moves the gauge by delta (use negative deltas to decrement).
func (g *GaugeInt) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Set replaces the gauge value.
func (g *GaugeInt) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Load returns the current value (0 for a nil gauge).
func (g *GaugeInt) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two microsecond latency buckets:
// bucket i counts observations in [2^i µs, 2^(i+1) µs), so the range spans
// 1 µs to ~67 s — wider than any job a per-job timeout admits.
const histBuckets = 27

// Histogram is a lock-free power-of-two latency histogram. The zero value
// is ready to use; Observe is nil-safe.
type Histogram struct {
	count   atomic.Int64
	sumUS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	i := bits.Len64(uint64(us)) - 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.count.Add(1)
	h.sumUS.Add(us)
	h.buckets[i].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot summarizes a histogram: count, mean, and bucket-upper-
// bound estimates of the 50th/90th/95th/99th percentiles.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P95MS  float64 `json:"p95_ms,omitempty"`
	P99MS  float64 `json:"p99_ms"`
	// BucketsUS maps each non-empty bucket's upper bound in µs to its
	// count; a poor man's cumulative latency curve.
	BucketsUS map[string]int64 `json:"buckets_us,omitempty"`
}

// Snapshot renders the histogram. Concurrent Observe calls may tear the
// (count, buckets) pair slightly; the summary is monitoring data, not an
// invariant.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	if s.Count == 0 {
		return s
	}
	s.MeanMS = float64(h.sumUS.Load()) / float64(s.Count) / 1000
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	s.P50MS = percentile(counts[:], s.Count, 0.50)
	s.P90MS = percentile(counts[:], s.Count, 0.90)
	s.P95MS = percentile(counts[:], s.Count, 0.95)
	s.P99MS = percentile(counts[:], s.Count, 0.99)
	s.BucketsUS = make(map[string]int64)
	for i, c := range counts {
		if c > 0 {
			s.BucketsUS[formatBound(i)] = c
		}
	}
	return s
}

// percentile returns the upper bound (in ms) of the bucket containing the
// q-quantile observation.
func percentile(counts []int64, total int64, q float64) float64 {
	rank := int64(math.Ceil(q * float64(total)))
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			return float64(uint64(1)<<(i+1)) / 1000
		}
	}
	return float64(uint64(1)<<len(counts)) / 1000
}

// formatBound renders bucket i's upper bound in µs.
func formatBound(i int) string {
	return strconv.FormatUint(uint64(1)<<(i+1), 10)
}

// Label is one key=value dimension on a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// labelKey renders labels into a canonical map key (sorted by label key).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labelled instance of a metric family.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *GaugeInt
	fn      func() float64
	hist    *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
	order  []string // insertion order of series keys, for stable exposition
}

// Registry is a process-wide set of named metric families. Registration is
// idempotent get-or-create keyed by (name, labels), so concurrent workers
// may all "register" the same series and share the underlying atomics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // insertion order of family names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// getFamily returns the named family, creating it with the given kind/help,
// and panics on a kind clash — two meanings for one name is a programming
// error worth failing loudly over.
func (r *Registry) getFamily(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	// gauge and gaugeFunc render identically; everything else must match.
	a, b := f.kind, kind
	if a == kindGaugeFunc {
		a = kindGauge
	}
	if b == kindGaugeFunc {
		b = kindGauge
	}
	if a != b {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter series for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindCounter)
	k := labelKey(labels)
	s, ok := f.series[k]
	if !ok {
		s = &series{labels: labels, counter: &Counter{}}
		f.series[k] = s
		f.order = append(f.order, k)
	}
	return s.counter
}

// Gauge returns the gauge series for (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *GaugeInt {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGauge)
	k := labelKey(labels)
	s, ok := f.series[k]
	if !ok {
		s = &series{labels: labels, gauge: &GaugeInt{}}
		f.series[k] = s
		f.order = append(f.order, k)
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is sampled from fn at exposition
// time (uptime, queue depth owned by another component). Re-registering the
// same (name, labels) replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGaugeFunc)
	k := labelKey(labels)
	s, ok := f.series[k]
	if !ok {
		s = &series{labels: labels}
		f.series[k] = s
		f.order = append(f.order, k)
	}
	s.fn = fn
}

// Histogram returns the histogram series for (name, labels), creating it on
// first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindHistogram)
	k := labelKey(labels)
	s, ok := f.series[k]
	if !ok {
		s = &series{labels: labels, hist: &Histogram{}}
		f.series[k] = s
		f.order = append(f.order, k)
	}
	return s.hist
}

// promLabels renders a label set in Prometheus exposition syntax, with an
// optional extra label appended (used for histogram le bounds).
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePromTo renders every family in the Prometheus text exposition
// format (version 0.0.4). Families appear in registration order — stable
// across renders — with # HELP and # TYPE headers; histogram series render
// cumulative le buckets in seconds plus _sum and _count.
func (r *Registry) WritePromTo(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	// Snapshot the structure under the lock; atomic loads happen after.
	type snapSeries struct {
		labels []Label
		s      *series
	}
	type snapFamily struct {
		name, help string
		kind       metricKind
		series     []snapSeries
	}
	fams := make([]snapFamily, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		sf := snapFamily{name: f.name, help: f.help, kind: f.kind}
		for _, k := range f.order {
			s := f.series[k]
			sf.series = append(sf.series, snapSeries{labels: s.labels, s: s})
		}
		fams = append(fams, sf)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, ss := range f.series {
			switch {
			case ss.s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(ss.labels), ss.s.counter.Load())
			case ss.s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(ss.labels), ss.s.gauge.Load())
			case ss.s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, promLabels(ss.labels), formatFloat(ss.s.fn()))
			case ss.s.hist != nil:
				writePromHistogram(&b, f.name, ss.labels, ss.s.hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram series: cumulative buckets with
// upper bounds in seconds (the native unit of Prometheus durations), +Inf,
// then _sum (seconds) and _count.
func writePromHistogram(b *strings.Builder, name string, labels []Label, h *Histogram) {
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		le := float64(uint64(1)<<(i+1)) / 1e6 // bucket upper bound, seconds
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, promLabels(labels, L("le", formatFloat(le))), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, promLabels(labels, L("le", "+Inf")), h.count.Load())
	fmt.Fprintf(b, "%s_sum%s %s\n", name, promLabels(labels), formatFloat(float64(h.sumUS.Load())/1e6))
	fmt.Fprintf(b, "%s_count%s %d\n", name, promLabels(labels), h.count.Load())
}
