package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
)

// Event is one record on a run's timeline. Kind identifies the producer:
//
//	"iteration"  — framework good-iteration boundary (frame.Executor)
//	"leaf"       — framework leaf statement executed
//	"phase-tick" — phase-clock dominant phase changed (clock.PhaseProbe)
//	"count"      — tracked species counts sampled (expt.Driver)
//	"rule-group" — per-rule-group firing tally (engine runners)
//	"dropped"    — ring-buffer overflow marker appended by WriteNDJSON
//
// Rounds is parallel time (interactions/n); Value is kind-specific (#X for
// phase ticks, dropped count for the overflow marker).
type Event struct {
	Kind    string           `json:"kind"`
	Replica int              `json:"replica,omitempty"`
	Iter    int              `json:"iter,omitempty"`
	Leaf    int              `json:"leaf,omitempty"`
	Level   int              `json:"level,omitempty"`
	Phase   int              `json:"phase,omitempty"`
	Rounds  float64          `json:"rounds"`
	Name    string           `json:"name,omitempty"`
	Value   int64            `json:"value"`
	Counts  map[string]int64 `json:"counts,omitempty"`
	// Reason carries free-text provenance for events that record a
	// decision — e.g. the "runner" event explaining a kernel selection.
	Reason string `json:"reason,omitempty"`
}

// DefaultTraceCap bounds a Trace's memory when no explicit capacity is
// given: 65536 events ≈ a few MB, enough for any experiment timeline.
const DefaultTraceCap = 65536

// Trace is a bounded in-memory event buffer. When full it drops new events
// (keeping the timeline's head, which carries the phase structure) and
// counts the drops. All methods are nil-safe so a nil *Trace is the no-op
// default.
type Trace struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	dropped uint64
}

// NewTrace returns a trace holding at most capacity events
// (DefaultTraceCap if capacity <= 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{cap: capacity}
}

// Emit appends an event, dropping it (and counting the drop) if the buffer
// is full. Safe for concurrent use and on a nil receiver.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.events) >= t.cap {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events discarded due to overflow.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events in emission order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteNDJSON writes the buffered events as newline-delimited JSON, one
// event per line, appending a final {"kind":"dropped"} marker whose Value
// is the overflow count when any events were discarded.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	dropped := t.dropped
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	if dropped > 0 {
		return enc.Encode(Event{Kind: "dropped", Value: int64(dropped)})
	}
	return nil
}

// traceKey is the context key for a run's Trace.
type traceKey struct{}

// WithTrace returns a context carrying t, so components that only see a
// context (the serve registry's run closures) can attach tracing without
// signature changes.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's Trace, or nil when none is attached —
// the nil-safe no-op default.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// RuleStats tallies per-rule firings inside a single-threaded runner. It is
// deliberately not atomic: each runner owns its own RuleStats, and the hot
// path must stay a plain increment. A nil *RuleStats is the no-op default —
// Fire inlines to one branch.
type RuleStats struct {
	fired []uint64
}

// NewRuleStats returns stats sized for a protocol with n rules.
func NewRuleStats(n int) *RuleStats {
	return &RuleStats{fired: make([]uint64, n)}
}

// Fire records count firings of rule i. Nil-safe and bounds-guarded so a
// stale index can never crash a run.
func (s *RuleStats) Fire(i int, count uint64) {
	if s == nil {
		return
	}
	if i >= 0 && i < len(s.fired) {
		s.fired[i] += count
	}
}

// Fired returns the per-rule firing counts (nil for a nil receiver).
func (s *RuleStats) Fired() []uint64 {
	if s == nil {
		return nil
	}
	return append([]uint64(nil), s.fired...)
}

// Total returns the sum of all rule firings.
func (s *RuleStats) Total() uint64 {
	if s == nil {
		return 0
	}
	var sum uint64
	for _, c := range s.fired {
		sum += c
	}
	return sum
}
