package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

var (
	tpA = New("test/a", "first test point")
	tpB = New("test/b", "second test point")
)

func TestInactivePointIsNoop(t *testing.T) {
	t.Cleanup(Reset)
	if out := tpA.Eval(); out.Fire {
		t.Fatal("inactive point fired")
	}
	if err := tpA.Inject(context.Background()); err != nil {
		t.Fatalf("inactive Inject returned %v", err)
	}
}

func TestEnableErrorKind(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("test/a=error"); err != nil {
		t.Fatal(err)
	}
	err := tpA.Inject(context.Background())
	if !IsInjected(err) {
		t.Fatalf("want injected error, got %v", err)
	}
	if !strings.Contains(err.Error(), "test/a") {
		t.Errorf("error does not name the point: %v", err)
	}
	// Point B stays inert.
	if err := tpB.Inject(context.Background()); err != nil {
		t.Fatalf("unmentioned point fired: %v", err)
	}
}

func TestPanicKindAndOff(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("test/a=panic"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			v := recover()
			pv, ok := v.(PanicValue)
			if !ok || pv.Name != "test/a" {
				t.Errorf("want PanicValue{test/a}, got %v", v)
			}
		}()
		tpA.Inject(context.Background())
		t.Error("panic kind did not panic")
	}()
	if err := Enable("test/a=off"); err != nil {
		t.Fatal(err)
	}
	if err := tpA.Inject(context.Background()); err != nil {
		t.Fatalf("point still active after off: %v", err)
	}
}

func TestCancelKind(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("test/a=cancel"); err != nil {
		t.Fatal(err)
	}
	if err := tpA.Inject(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

func TestSleepKindHonoursContext(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("test/a=sleep(d=10s)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := tpA.Inject(ctx); err != nil {
		t.Fatalf("sleep returned %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("sleep ignored the cancelled context")
	}
}

func TestAfterAndTimes(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("test/a=error(after=2,times=3)"); err != nil {
		t.Fatal(err)
	}
	var fired []bool
	for i := 0; i < 8; i++ {
		fired = append(fired, tpA.Eval().Fire)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("hit pattern = %v, want %v", fired, want)
		}
	}
}

// TestSeededProbabilityIsDeterministic: the same (p, seed) must replay the
// same fire pattern, and a different seed must (overwhelmingly) differ.
func TestSeededProbabilityIsDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	pattern := func(spec string) string {
		Reset()
		if err := Enable(spec); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if tpA.Eval().Fire {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a1 := pattern("test/a=error(p=0.5,seed=7)")
	a2 := pattern("test/a=error(p=0.5,seed=7)")
	b1 := pattern("test/a=error(p=0.5,seed=8)")
	if a1 != a2 {
		t.Fatalf("same seed diverged:\n%s\n%s", a1, a2)
	}
	if a1 == b1 {
		t.Fatalf("different seeds produced the same 64-hit pattern %s", a1)
	}
	if !strings.Contains(a1, "1") || !strings.Contains(a1, "0") {
		t.Fatalf("p=0.5 pattern degenerate: %s", a1)
	}
}

func TestEnableRejectsBadSpecs(t *testing.T) {
	t.Cleanup(Reset)
	for _, spec := range []string{
		"nosuch/point=panic",
		"test/a",
		"test/a=explode",
		"test/a=panic(p=2)",
		"test/a=sleep(d=fast)",
		"test/a=panic(wat=1)",
		"test/a=panic(p=0.5",
	} {
		if err := Enable(spec); err == nil {
			t.Errorf("Enable(%q) succeeded, want error", spec)
		}
	}
	// A bad entry anywhere applies nothing.
	if err := Enable("test/a=panic;nosuch/point=panic"); err == nil {
		t.Fatal("partial spec applied")
	}
	if out := tpA.Eval(); out.Fire {
		t.Fatal("point activated by a rejected spec")
	}
}

func TestListReportsRegistryAndActivation(t *testing.T) {
	t.Cleanup(Reset)
	if err := Enable("test/b=sleep(d=1ms)"); err != nil {
		t.Fatal(err)
	}
	var sawA, sawB bool
	for _, info := range List() {
		switch info.Name {
		case "test/a":
			sawA = true
			if info.Active != "" {
				t.Errorf("test/a active = %q, want inactive", info.Active)
			}
			if info.Doc == "" {
				t.Error("test/a doc missing")
			}
		case "test/b":
			sawB = true
			if info.Active != "sleep(d=1ms)" {
				t.Errorf("test/b active = %q", info.Active)
			}
		}
	}
	if !sawA || !sawB {
		t.Fatalf("List missing test points (a=%v b=%v)", sawA, sawB)
	}
}
