// Package fault is a deterministic failpoint framework: named injection
// points compiled into the serving stack (replica execution, job admission,
// NDJSON streaming) that stay inert until activated by an environment
// variable, a flag, or a test. An activated point fires one of four chaos
// kinds — panic, error, latency, context-cancel — under a seeded
// probabilistic trigger, so a chaos run is reproducible from its spec.
//
// Activation specs have the form
//
//	NAME=KIND[(ARG=V,...)][;NAME=KIND(...)]...
//
// for example
//
//	POPKIT_FAILPOINTS='fleet/replica=panic(p=0.4,seed=13);serve/stream=panic(after=2,times=1)'
//
// Supported kinds are panic, error, sleep, and cancel; arguments are
// p (fire probability per eligible hit, default 1), seed (trigger RNG seed,
// default 1), after (skip the first N hits, default 0), times (fire at most
// N times, default unlimited), and d (sleep duration, default 10ms).
// NAME=off deactivates a point.
//
// The framework exists to prove the recovery layers built on top of it:
// replica retry in the fleet, journal resume in the serve queue, and
// reconnect in the HTTP client all promise byte-identical output under
// injected faults, and scripts/chaos.sh holds them to it.
package fault

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar is the environment variable CLIs read activation specs from.
const EnvVar = "POPKIT_FAILPOINTS"

// Kind is what an activated failpoint does when it fires.
type Kind string

const (
	// KindPanic panics with a PanicValue naming the point.
	KindPanic Kind = "panic"
	// KindError returns an error wrapping ErrInjected.
	KindError Kind = "error"
	// KindSleep delays the call site by the trigger's d argument.
	KindSleep Kind = "sleep"
	// KindCancel returns a context.Canceled-wrapping error, imitating a
	// cancellation arriving at the worst possible moment.
	KindCancel Kind = "cancel"
)

// ErrInjected is the sentinel wrapped by every error a failpoint returns;
// recovery layers match it with IsInjected to tell injected failures from
// organic ones (injected failures are always safe to retry).
var ErrInjected = errors.New("injected fault")

// IsInjected reports whether err originated from a fired failpoint.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// PanicValue is the value a panic-kind failpoint panics with, so recovery
// code (and humans reading stacks) can tell chaos from genuine bugs.
type PanicValue struct{ Name string }

func (v PanicValue) String() string { return "injected panic at failpoint " + v.Name }

// Outcome is one evaluation of a point's trigger.
type Outcome struct {
	// Fire reports whether the point fired on this hit.
	Fire bool
	// Kind is the activated chaos kind (valid when Fire).
	Kind Kind
	// Sleep is the latency to inject for KindSleep.
	Sleep time.Duration
}

// trigger is one parsed activation. Its counters and RNG advance under a
// mutex, so a single-threaded call site replays identically run to run.
type trigger struct {
	kind  Kind
	spec  string // the activation string, echoed by List
	prob  float64
	after int
	times int // < 0 means unlimited
	sleep time.Duration

	mu    sync.Mutex
	hits  int
	fired int
	rng   uint64
}

// eval advances the trigger by one hit.
func (t *trigger) eval() Outcome {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hits++
	if t.hits <= t.after {
		return Outcome{}
	}
	if t.times >= 0 && t.fired >= t.times {
		return Outcome{}
	}
	if t.prob < 1 {
		if float64(splitmix(&t.rng)>>11)/(1<<53) >= t.prob {
			return Outcome{}
		}
	}
	t.fired++
	return Outcome{Fire: true, Kind: t.kind, Sleep: t.sleep}
}

// splitmix is SplitMix64 — a tiny seeded generator so the framework stays
// dependency-free (engine.SplitSeed is the same construction).
func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Point is one named injection site. Points are package-level variables
// created with New at init time; an inactive point is a single atomic load.
type Point struct {
	name string
	doc  string
	trig atomic.Pointer[trigger]
}

var (
	regMu    sync.Mutex
	registry = map[string]*Point{}
)

// New registers a failpoint. Call it from a package-level variable
// declaration; duplicate names panic (they would make specs ambiguous).
func New(name, doc string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("fault: failpoint %q registered twice", name))
	}
	p := &Point{name: name, doc: doc}
	registry[name] = p
	return p
}

// Name returns the point's registry name.
func (p *Point) Name() string { return p.name }

// Eval advances the point's trigger by one hit and reports whether it
// fired. Call sites that need a custom interpretation of the kind (e.g.
// aborting an HTTP connection) use this; the rest use Inject.
func (p *Point) Eval() Outcome {
	t := p.trig.Load()
	if t == nil {
		return Outcome{}
	}
	return t.eval()
}

// Inject evaluates the point and performs the common interpretation of its
// kind: panic panics with a PanicValue, error returns an ErrInjected-
// wrapping error, cancel returns a context.Canceled-wrapping error, and
// sleep delays (honouring ctx) then proceeds. A nil return means the call
// site should continue normally.
func (p *Point) Inject(ctx context.Context) error {
	out := p.Eval()
	if !out.Fire {
		return nil
	}
	switch out.Kind {
	case KindPanic:
		panic(PanicValue{p.name})
	case KindError:
		return fmt.Errorf("failpoint %s: %w", p.name, ErrInjected)
	case KindCancel:
		return fmt.Errorf("failpoint %s: %w", p.name, context.Canceled)
	case KindSleep:
		if ctx == nil {
			time.Sleep(out.Sleep)
			return nil
		}
		timer := time.NewTimer(out.Sleep)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
		}
		return nil
	}
	return nil
}

// Enable activates the points named in spec (see the package comment for
// the grammar). Points not mentioned keep their current state; NAME=off
// deactivates one. Unknown names and malformed triggers are errors, with
// nothing applied.
func Enable(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	type update struct {
		p *Point
		t *trigger
	}
	var updates []update
	regMu.Lock()
	defer regMu.Unlock()
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, trig, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("fault: %q is not NAME=TRIGGER", entry)
		}
		name = strings.TrimSpace(name)
		p, known := registry[name]
		if !known {
			return fmt.Errorf("fault: unknown failpoint %q (known: %s)", name, strings.Join(namesLocked(), ", "))
		}
		t, err := parseTrigger(strings.TrimSpace(trig))
		if err != nil {
			return fmt.Errorf("fault: %s: %w", name, err)
		}
		updates = append(updates, update{p, t})
	}
	for _, u := range updates {
		u.p.trig.Store(u.t)
	}
	return nil
}

// EnableFromEnv applies the spec in $POPKIT_FAILPOINTS, if any.
func EnableFromEnv() error { return Enable(os.Getenv(EnvVar)) }

// Reset deactivates every failpoint (tests).
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range registry {
		p.trig.Store(nil)
	}
}

// Info describes one registered failpoint for listings.
type Info struct {
	Name string
	Doc  string
	// Active is the point's current activation spec ("" when inactive).
	Active string
}

// List returns every registered failpoint sorted by name.
func List() []Info {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Info, 0, len(registry))
	for _, name := range namesLocked() {
		p := registry[name]
		info := Info{Name: name, Doc: p.doc}
		if t := p.trig.Load(); t != nil {
			info.Active = t.spec
		}
		out = append(out, info)
	}
	return out
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// parseTrigger parses KIND[(ARG=V,...)] or "off" (nil trigger).
func parseTrigger(s string) (*trigger, error) {
	if s == "off" {
		return nil, nil
	}
	kind, args := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("unbalanced parens in trigger %q", s)
		}
		kind, args = s[:i], s[i+1:len(s)-1]
	}
	t := &trigger{spec: s, prob: 1, times: -1, sleep: 10 * time.Millisecond, rng: 1}
	switch Kind(kind) {
	case KindPanic, KindError, KindSleep, KindCancel:
		t.kind = Kind(kind)
	default:
		return nil, fmt.Errorf("unknown trigger kind %q (want panic|error|sleep|cancel|off)", kind)
	}
	if args == "" {
		return t, nil
	}
	for _, arg := range strings.Split(args, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(arg), "=")
		if !ok {
			return nil, fmt.Errorf("argument %q is not KEY=VALUE", arg)
		}
		var err error
		switch key {
		case "p":
			t.prob, err = strconv.ParseFloat(val, 64)
			if err == nil && (t.prob < 0 || t.prob > 1) {
				err = fmt.Errorf("probability %v out of [0,1]", t.prob)
			}
		case "seed":
			t.rng, err = strconv.ParseUint(val, 10, 64)
		case "after":
			t.after, err = strconv.Atoi(val)
		case "times":
			t.times, err = strconv.Atoi(val)
		case "d":
			t.sleep, err = time.ParseDuration(val)
		default:
			err = fmt.Errorf("unknown argument %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("bad argument %q: %w", arg, err)
		}
	}
	return t, nil
}
