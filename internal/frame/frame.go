// Package frame executes programs of the lang package under the
// good-iteration semantics that Theorem 2.4 promises for compiled
// protocols: in a good iteration every agent follows the same execution
// path; each "execute" leaf runs its ruleset under a fair sequential
// scheduler for ≥ c·ln n rounds; assignments and "if exists" evaluations
// reach their expected outcomes (Definition 2.3).
//
// The executor charges the same parallel-time costs as the compiled
// protocol — c·ln n rounds per leaf, with assignments costing two leaves
// and branch evaluations two leaves (the Fig. 1 and Fig. 2 expansions) —
// so convergence times measured here reproduce the paper's round bounds.
// Forever-threads ("execute ruleset:") run composed with every foreground
// leaf and keep running during bookkeeping leaves, mirroring the §1.3
// thread composition. Fault injection (stopping mid-iteration, partial
// assignments) lets tests exercise the guaranteed-behavior property
// (Definition 2.1) that the always-correct protocols rely on.
package frame

import (
	"fmt"
	"math"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/lang"
	"popkit/internal/obs"
	"popkit/internal/rules"
)

// Faults configures adversarial behavior for robustness tests. The zero
// value is a fault-free executor.
type Faults struct {
	// StopAfterLeaves stops executing foreground statements after this
	// many leaves (0 = never): the paper's "it may slow (or stop) without
	// warning". Background threads keep running.
	StopAfterLeaves int
	// PartialAssignProb is the per-agent probability that an assignment
	// leaf skips the agent, violating the good-iteration promise the way
	// a marginal iteration would.
	PartialAssignProb float64
	// SkipIterationProb is the probability that an entire iteration runs
	// "unsynchronized": foreground leaves are skipped while background
	// threads run, modeling the uncontrolled prefix before good
	// iterations start.
	SkipIterationProb float64
}

// Executor runs one program instance over a population.
type Executor struct {
	Prog  *lang.Program
	Space *bitmask.Space
	Pop   *engine.Dense
	RNG   *engine.RNG
	// C is the loop constant used throughout (the program's MaxC unless
	// overridden before the first iteration).
	C int
	// Rounds is the accumulated parallel time under the framework cost
	// model.
	Rounds float64
	// Iterations counts completed outer iterations.
	Iterations int
	Faults     Faults

	// Trace, when non-nil, receives "leaf" and "iteration" events as the
	// program runs (obs timeline records). Emission happens outside every
	// RNG draw, so attaching a trace never changes the trajectory.
	// TraceReplica labels the events when several replicas share a trace.
	Trace        *obs.Trace
	TraceReplica int

	logN       float64
	background *rules.Ruleset   // merged Forever threads, nil if none
	bgProto    *engine.Protocol // background alone
	repeats    []compiledThread // one per repeat thread
	leafCount  int              // foreground leaves executed (for faults)
	stopped    bool
}

type compiledThread struct {
	name string
	body []compiledStmt
}

type stmtKind int

const (
	kindExecute stmtKind = iota
	kindRepeatLog
	kindIf
	kindAssignFormula
	kindAssignRand
	kindAssignConst
)

type compiledStmt struct {
	kind  stmtKind
	c     int
	proto *engine.Protocol // kindExecute: leaf rules ∘ background
	cond  bitmask.Guard    // kindIf / kindAssignFormula
	v     bitmask.Var      // assignment target
	onVal bool             // kindAssignConst
	body  []compiledStmt   // kindRepeatLog / kindIf then-branch
	other []compiledStmt   // kindIf else-branch
}

// New builds an executor for the program over a fresh population of n
// agents, all initialized to the program's declared initial values. Use
// SetInput to overlay per-agent input variables before running.
func New(prog *lang.Program, n int, seed uint64) (*Executor, error) {
	if err := prog.Check(); err != nil {
		return nil, fmt.Errorf("frame: %w", err)
	}
	sp, err := prog.BuildSpace()
	if err != nil {
		return nil, err
	}
	init := prog.InitialState(sp)
	e := &Executor{
		Prog:  prog,
		Space: sp,
		Pop:   engine.NewDenseInit(n, func(int) bitmask.State { return init }),
		RNG:   engine.NewRNG(seed),
		C:     prog.MaxC(),
		logN:  math.Log(float64(n)),
	}

	// Merge Forever threads into the background ruleset.
	var bgParts []*rules.Ruleset
	for _, th := range prog.Threads {
		if isForeverThread(th) {
			for _, st := range th.Body {
				ex := st.(lang.Execute)
				rs, err := rules.Parse(sp, joinLines(ex.Rules))
				if err != nil {
					return nil, fmt.Errorf("frame: thread %s: %w", th.Name, err)
				}
				bgParts = append(bgParts, rs)
			}
		}
	}
	if len(bgParts) > 0 {
		e.background = rules.ComposeThreads(bgParts...)
		e.bgProto = engine.CompileProtocol(e.background)
	}

	// Compile the repeat threads.
	for _, th := range prog.Threads {
		if isForeverThread(th) {
			continue
		}
		body := th.Body
		if len(body) == 1 {
			if rep, ok := body[0].(lang.Repeat); ok {
				body = rep.Body
			}
		}
		cb, err := e.compileBlock(body)
		if err != nil {
			return nil, fmt.Errorf("frame: thread %s: %w", th.Name, err)
		}
		e.repeats = append(e.repeats, compiledThread{name: th.Name, body: cb})
	}
	if len(e.repeats) == 0 {
		return nil, fmt.Errorf("frame: program has no repeat thread")
	}
	return e, nil
}

func isForeverThread(th lang.Thread) bool {
	if len(th.Body) == 0 {
		return false
	}
	for _, st := range th.Body {
		ex, ok := st.(lang.Execute)
		if !ok || !ex.Forever {
			return false
		}
	}
	return true
}

func (e *Executor) compileBlock(b lang.Block) ([]compiledStmt, error) {
	out := make([]compiledStmt, 0, len(b))
	for _, s := range b {
		cs, err := e.compileStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

func (e *Executor) compileStmt(s lang.Stmt) (compiledStmt, error) {
	switch st := s.(type) {
	case lang.Execute:
		rs, err := rules.Parse(e.Space, joinLines(st.Rules))
		if err != nil {
			return compiledStmt{}, err
		}
		full := rs
		if e.background != nil {
			full = rules.ComposeThreads(rs, e.background)
		}
		return compiledStmt{kind: kindExecute, c: st.C, proto: engine.CompileProtocol(full)}, nil
	case lang.RepeatLog:
		body, err := e.compileBlock(st.Body)
		if err != nil {
			return compiledStmt{}, err
		}
		return compiledStmt{kind: kindRepeatLog, c: st.C, body: body}, nil
	case lang.IfExists:
		f, err := rules.ParseFormula(e.Space, st.Cond)
		if err != nil {
			return compiledStmt{}, err
		}
		then, err := e.compileBlock(st.Then)
		if err != nil {
			return compiledStmt{}, err
		}
		els, err := e.compileBlock(st.Else)
		if err != nil {
			return compiledStmt{}, err
		}
		return compiledStmt{kind: kindIf, cond: bitmask.Compile(f), body: then, other: els}, nil
	case lang.Assign:
		v, ok := e.Space.LookupVar(st.Var)
		if !ok {
			return compiledStmt{}, fmt.Errorf("unknown variable %s", st.Var)
		}
		switch st.Expr {
		case lang.RandExpr:
			return compiledStmt{kind: kindAssignRand, v: v}, nil
		case lang.OnExpr:
			return compiledStmt{kind: kindAssignConst, v: v, onVal: true}, nil
		case lang.OffExpr:
			return compiledStmt{kind: kindAssignConst, v: v, onVal: false}, nil
		default:
			f, err := rules.ParseFormula(e.Space, st.Expr)
			if err != nil {
				return compiledStmt{}, err
			}
			return compiledStmt{kind: kindAssignFormula, v: v, cond: bitmask.Compile(f)}, nil
		}
	case lang.Repeat:
		return compiledStmt{}, fmt.Errorf("nested unbounded repeat")
	}
	return compiledStmt{}, fmt.Errorf("unsupported statement %T", s)
}

// SetInput overlays per-agent input state; call before the first iteration.
func (e *Executor) SetInput(fn func(i int, s bitmask.State) bitmask.State) {
	for i := 0; i < e.Pop.N(); i++ {
		e.Pop.SetAgent(i, fn(i, e.Pop.Agent(i)))
	}
}

// Count returns the number of agents satisfying the formula (textual).
func (e *Executor) Count(formula string) int {
	f, err := rules.ParseFormula(e.Space, formula)
	if err != nil {
		panic("frame: " + err.Error())
	}
	return e.Pop.Count(bitmask.Compile(f))
}

// CountVar returns the number of agents with the named variable set.
func (e *Executor) CountVar(name string) int {
	v, ok := e.Space.LookupVar(name)
	if !ok {
		panic("frame: unknown variable " + name)
	}
	return e.Pop.Count(bitmask.Compile(bitmask.Is(v)))
}

// leafRounds is the parallel time charged per leaf.
func (e *Executor) leafRounds() float64 { return float64(e.C) * e.logN }

// chargeLeaf accounts one leaf of parallel time and runs the background
// threads for that long.
func (e *Executor) chargeLeaf(leaves float64) {
	dt := leaves * e.leafRounds()
	e.Rounds += dt
	if e.bgProto != nil {
		r := engine.NewRunner(e.bgProto, e.Pop, e.RNG)
		r.RunRounds(dt)
	}
}

// RunIteration executes one iteration of every repeat thread, in order.
func (e *Executor) RunIteration() {
	skip := e.Faults.SkipIterationProb > 0 && e.RNG.Float64() < e.Faults.SkipIterationProb
	for _, th := range e.repeats {
		if skip {
			e.chargeLeaf(float64(countLeaves(th.body)))
			continue
		}
		e.runBlock(th.body)
	}
	e.Iterations++
	if e.Trace != nil {
		e.Trace.Emit(obs.Event{
			Kind: "iteration", Replica: e.TraceReplica,
			Iter: e.Iterations, Leaf: e.leafCount, Rounds: e.Rounds,
		})
	}
}

// RunIterations executes k iterations.
func (e *Executor) RunIterations(k int) {
	for i := 0; i < k; i++ {
		e.RunIteration()
	}
}

// RunUntil executes iterations until the condition holds, up to maxIters.
// It reports the number of iterations run and whether the condition held.
func (e *Executor) RunUntil(cond func(*Executor) bool, maxIters int) (int, bool) {
	for i := 0; i < maxIters; i++ {
		if cond(e) {
			return i, true
		}
		e.RunIteration()
	}
	return maxIters, cond(e)
}

func countLeaves(body []compiledStmt) int {
	total := 0
	for _, s := range body {
		switch s.kind {
		case kindExecute:
			total++
		case kindAssignConst, kindAssignFormula, kindAssignRand:
			total += 2
		case kindIf:
			t := countLeaves(s.body)
			if o := countLeaves(s.other); o > t {
				t = o
			}
			total += 2 + t
		case kindRepeatLog:
			total += countLeaves(s.body) // charged per loop pass at run time
		}
	}
	return total
}

func (e *Executor) runBlock(body []compiledStmt) {
	for i := range body {
		e.runStmt(&body[i])
	}
}

func (e *Executor) runStmt(s *compiledStmt) {
	if e.Faults.StopAfterLeaves > 0 && e.leafCount >= e.Faults.StopAfterLeaves {
		e.stopped = true
		return
	}
	switch s.kind {
	case kindExecute:
		e.leafCount++
		dt := float64(s.c) * e.logN
		e.Rounds += dt
		r := engine.NewRunner(s.proto, e.Pop, e.RNG)
		r.RunRounds(dt)
		if e.Trace != nil {
			e.Trace.Emit(obs.Event{
				Kind: "leaf", Replica: e.TraceReplica, Iter: e.Iterations,
				Leaf: e.leafCount, Rounds: e.Rounds, Name: "execute",
				Value: int64(r.Interactions),
			})
		}

	case kindRepeatLog:
		times := int(math.Ceil(float64(s.c) * e.logN))
		for t := 0; t < times && !e.stopped; t++ {
			e.runBlock(s.body)
		}

	case kindIf:
		// Condition evaluation costs two leaves (Fig. 2).
		e.leafCount += 2
		e.chargeLeaf(2)
		if e.Pop.Count(s.cond) > 0 {
			e.runBlock(s.body)
		} else {
			e.runBlock(s.other)
		}

	case kindAssignFormula, kindAssignRand, kindAssignConst:
		// Assignments cost two leaves (Fig. 1).
		e.leafCount += 2
		e.chargeLeaf(2)
		e.applyAssign(s)
	}
}

func (e *Executor) applyAssign(s *compiledStmt) {
	skipProb := e.Faults.PartialAssignProb
	for i := 0; i < e.Pop.N(); i++ {
		if skipProb > 0 && e.RNG.Float64() < skipProb {
			continue
		}
		st := e.Pop.Agent(i)
		var val bool
		switch s.kind {
		case kindAssignFormula:
			val = s.cond.Match(st)
		case kindAssignRand:
			val = e.RNG.Bool()
		case kindAssignConst:
			val = s.onVal
		}
		e.Pop.SetAgent(i, s.v.Set(st, val))
	}
}

// Stopped reports whether a StopAfterLeaves fault has halted the
// foreground program.
func (e *Executor) Stopped() bool { return e.stopped }

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}
