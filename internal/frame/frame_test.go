package frame

import (
	"math"
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/lang"
)

const leaderElectionSrc = `
protocol LeaderElection
var L = on output

thread Main uses L
  var D = off
  var F = on
  repeat:
    if exists (L):
      F := rand
      D := L & F
      if exists (D):
        L := D
    else:
      L := on
`

const majoritySrc = `
protocol Majority
var YA = off output
var A = off input, B = off input

thread Main uses YA reads A, B
  var As = off
  var Bs = off
  var K = off
  repeat:
    As := A
    Bs := B
    repeat >= 2 ln n times:
      execute for >= 2 ln n rounds ruleset:
        (As) + (Bs) -> (!As) + (!Bs)
      K := off
      execute for >= 2 ln n rounds ruleset:
        (As & !K) + (!As & !Bs) -> (As & K) + (As & K)
        (Bs & !K) + (!As & !Bs) -> (Bs & K) + (Bs & K)
    if exists (As):
      YA := on
    if exists (Bs):
      YA := off
`

// TestLeaderElectionTheorem31 reproduces Theorem 3.1: after O(log n) good
// iterations, exactly one leader remains, and stays.
func TestLeaderElectionTheorem31(t *testing.T) {
	prog := lang.MustParse(leaderElectionSrc)
	for _, n := range []int{256, 2048} {
		for seed := uint64(0); seed < 3; seed++ {
			e, err := New(prog, n, seed)
			if err != nil {
				t.Fatal(err)
			}
			iters, ok := e.RunUntil(func(e *Executor) bool { return e.CountVar("L") == 1 }, 20*int(math.Log2(float64(n))))
			if !ok {
				t.Fatalf("n=%d seed=%d: leaders=%d after %d iterations", n, seed, e.CountVar("L"), iters)
			}
			// Theorem 3.1 also promises stability: subsequent iterations
			// keep the unique leader.
			e.RunIterations(5)
			if got := e.CountVar("L"); got != 1 {
				t.Errorf("n=%d seed=%d: leader count drifted to %d", n, seed, got)
			}
			// Convergence takes O(log n) iterations.
			if iters > 10*int(math.Log2(float64(n))) {
				t.Errorf("n=%d seed=%d: %d iterations, want O(log n)", n, seed, iters)
			}
		}
	}
}

// TestMajorityTheorem32 reproduces Theorem 3.2: the output variable
// converges to the majority side, for both orientations and regardless of
// the gap — including gap 1.
func TestMajorityTheorem32(t *testing.T) {
	prog := lang.MustParse(majoritySrc)
	const n = 1024
	cases := []struct {
		name     string
		nA, nB   int
		expectYA bool
	}{
		{"A wins big", 600, 200, true},
		{"B wins big", 200, 600, false},
		{"A wins by 1", 413, 412, true},
		{"B wins by 1", 412, 413, false},
		{"with uncolored agents", 30, 20, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := New(prog, n, 17)
			if err != nil {
				t.Fatal(err)
			}
			a, _ := e.Space.LookupVar("A")
			b, _ := e.Space.LookupVar("B")
			e.SetInput(func(i int, s bitmask.State) bitmask.State {
				switch {
				case i < tc.nA:
					return a.Set(s, true)
				case i < tc.nA+tc.nB:
					return b.Set(s, true)
				}
				return s
			})
			e.RunIterations(3)
			want := 0
			if tc.expectYA {
				want = n
			}
			if got := e.CountVar("YA"); got != want {
				t.Errorf("YA count = %d, want %d", got, want)
			}
			// Output must be stable across further iterations (§3
			// constraint (2)).
			e.RunIterations(2)
			if got := e.CountVar("YA"); got != want {
				t.Errorf("YA drifted to %d after extra iterations", got)
			}
		})
	}
}

// TestMajorityConvergenceTime verifies the O(log³ n) shape: the framework
// round cost per iteration is Θ(log² n) for the majority program (a depth-2
// loop nest), so a constant number of iterations is Θ(log² n)·O(log n)
// loop passes ⇒ rounds grow polylogarithmically, not polynomially.
func TestMajorityConvergenceTime(t *testing.T) {
	prog := lang.MustParse(majoritySrc)
	var prev float64
	for _, n := range []int{256, 4096} {
		e, err := New(prog, n, 5)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := e.Space.LookupVar("A")
		b, _ := e.Space.LookupVar("B")
		e.SetInput(func(i int, s bitmask.State) bitmask.State {
			if i < n/2+1 {
				return a.Set(s, true)
			}
			return b.Set(s, true)
		})
		e.RunIterations(1)
		perIter := e.Rounds
		logn := math.Log(float64(n))
		lo, hi := math.Pow(logn, 2), 100*math.Pow(logn, 3)
		if perIter < lo || perIter > hi {
			t.Errorf("n=%d: iteration cost %.0f rounds outside [log²n=%.0f, 100·log³n=%.0f]",
				n, perIter, lo, hi)
		}
		if prev > 0 {
			// Growing n 16× must grow cost far slower than linearly
			// (polylog vs polynomial).
			if perIter > 8*prev {
				t.Errorf("iteration cost scaled superpolylogarithmically: %.0f -> %.0f", prev, perIter)
			}
		}
		prev = perIter
	}
}

// TestGuaranteedBehaviorUnderFaults: with mid-iteration stops and partial
// assignments, majority may fail to converge quickly, but the §3 program
// constraints keep a settled output stable: once A* and B* are exhausted
// with a correct output, faulty extra iterations never flip it.
func TestGuaranteedBehaviorUnderFaults(t *testing.T) {
	prog := lang.MustParse(majoritySrc)
	const n = 512
	e, err := New(prog, n, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := e.Space.LookupVar("A")
	b, _ := e.Space.LookupVar("B")
	e.SetInput(func(i int, s bitmask.State) bitmask.State {
		if i < 300 {
			return a.Set(s, true)
		}
		return b.Set(s, true)
	})
	// Converge cleanly first.
	e.RunIterations(3)
	if got := e.CountVar("YA"); got != n {
		t.Fatalf("clean convergence failed: YA=%d", got)
	}
	// Now inject partial assignments and stops; the answer must not flip,
	// because flipping YA requires a nonempty B* surviving cancellation.
	e.Faults = Faults{PartialAssignProb: 0.3}
	e.RunIterations(3)
	if got := e.CountVar("YA"); got != n {
		t.Errorf("faulty iterations flipped settled output: YA=%d", got)
	}
}

// TestSkipIterationFault verifies the executor models the uncontrolled
// prefix: skipped iterations leave foreground variables untouched.
func TestSkipIterationFault(t *testing.T) {
	prog := lang.MustParse(leaderElectionSrc)
	e, err := New(prog, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Faults = Faults{SkipIterationProb: 1.0}
	before := e.CountVar("L")
	e.RunIterations(4)
	if got := e.CountVar("L"); got != before {
		t.Errorf("skipped iterations changed L: %d -> %d", before, got)
	}
	if e.Iterations != 4 {
		t.Errorf("Iterations = %d", e.Iterations)
	}
	if e.Rounds == 0 {
		t.Error("skipped iterations charged no time")
	}
}

// TestStopAfterLeaves checks the stop fault halts mid-iteration.
func TestStopAfterLeaves(t *testing.T) {
	prog := lang.MustParse(majoritySrc)
	e, err := New(prog, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	e.Faults = Faults{StopAfterLeaves: 3}
	e.RunIteration()
	if !e.Stopped() {
		t.Error("executor did not stop")
	}
}

// TestForeverThreadRuns: a background thread makes progress even when the
// main thread only does assignments.
func TestForeverThreadRuns(t *testing.T) {
	src := `
protocol BG
var R = on
var T = off

thread Main uses T
  repeat:
    T := on

thread ReduceSets uses R
  execute ruleset:
    (R) + (R) -> (R) + (!R)
`
	prog := lang.MustParse(src)
	e, err := New(prog, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	e.RunIterations(30)
	if got := e.CountVar("R"); got != 1 {
		t.Errorf("background coalescence left %d R agents, want 1", got)
	}
	if got := e.CountVar("T"); got != 256 {
		t.Errorf("assignment did not run: T=%d", got)
	}
}

func TestCountFormula(t *testing.T) {
	prog := lang.MustParse(leaderElectionSrc)
	e, err := New(prog, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Count("L & F"); got != 64 {
		t.Errorf("Count(L & F) = %d, want 64", got)
	}
	if got := e.Count("D"); got != 0 {
		t.Errorf("Count(D) = %d, want 0", got)
	}
}

// TestIterationCostAccounting: the framework charges c·ln n per leaf, two
// leaves per assignment/branch, and multiplies nested loop bodies by
// ⌈c·ln n⌉ passes — the §4 cost model the round measurements rely on.
func TestIterationCostAccounting(t *testing.T) {
	src := `
protocol Cost
var A = off

thread Main uses A
  repeat:
    A := on
    repeat >= 2 ln n times:
      execute for >= 2 ln n rounds ruleset:
        (A) + (.) -> (A) + (.)
`
	prog := lang.MustParse(src)
	const n = 1024
	e, err := New(prog, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	e.RunIteration()
	logn := math.Log(n)
	leaf := 2 * logn // c = 2
	passes := math.Ceil(2 * logn)
	want := 2*leaf + passes*leaf // assignment (2 leaves) + loop passes × 1 leaf
	if math.Abs(e.Rounds-want) > 1e-6 {
		t.Errorf("iteration cost = %.2f rounds, want %.2f", e.Rounds, want)
	}
}

// TestAssignmentSemantics: formula assignments evaluate per agent on its
// own local state (Definition 2.3's expected outcome).
func TestAssignmentSemantics(t *testing.T) {
	src := `
protocol Assign
var A = off
var B = off

thread Main uses B
  repeat:
    B := !A
`
	prog := lang.MustParse(src)
	e, err := New(prog, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := e.Space.LookupVar("A")
	e.SetInput(func(i int, s bitmask.State) bitmask.State {
		if i < 40 {
			return a.Set(s, true)
		}
		return s
	})
	e.RunIteration()
	if got := e.Count("B"); got != 60 {
		t.Errorf("B count = %d, want 60 (complement of A)", got)
	}
	if got := e.Count("A & B"); got != 0 {
		t.Errorf("A∧B = %d, want 0", got)
	}
}

// TestRandAssignmentIsPerAgent: each agent flips its own coin, so the set
// size concentrates around n/2 and differs across agents.
func TestRandAssignmentIsPerAgent(t *testing.T) {
	src := `
protocol Coin
var F = off

thread Main uses F
  repeat:
    F := rand
`
	prog := lang.MustParse(src)
	const n = 10000
	e, err := New(prog, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	e.RunIteration()
	got := e.Count("F")
	if got < n/2-300 || got > n/2+300 {
		t.Errorf("coin flip count = %d, want ≈ %d", got, n/2)
	}
}
