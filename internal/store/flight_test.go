package store

import (
	"context"
	"sync"
	"testing"
	"time"

	"popkit/internal/obs"
)

func TestFlightLeaderAndFollowers(t *testing.T) {
	f := NewFlight(NewMetrics(obs.NewRegistry()))
	leader, wait := f.Lead("h1")
	if !leader || wait != nil {
		t.Fatal("first caller did not lead")
	}
	const followers = 5
	var wg sync.WaitGroup
	outs := make([]Outcome, followers)
	for i := 0; i < followers; i++ {
		l, w := f.Lead("h1")
		if l {
			t.Fatal("second caller led while the call was open")
		}
		wg.Add(1)
		go func(i int, w func(context.Context) (Outcome, error)) {
			defer wg.Done()
			out, err := w(context.Background())
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			outs[i] = out
		}(i, w)
	}
	want := Outcome{Committed: true, Records: 3, Bytes: 99}
	f.Finish("h1", want)
	wg.Wait()
	for i, out := range outs {
		if out != want {
			t.Fatalf("follower %d got %+v, want %+v", i, out, want)
		}
	}
	if f.Inflight() != 0 {
		t.Fatalf("call not cleared: %d inflight", f.Inflight())
	}
	if got := f.m.Coalesced.Load(); got != followers {
		t.Fatalf("coalesced = %d, want %d", got, followers)
	}
	// The hash is leadable again after Finish.
	if leader, _ := f.Lead("h1"); !leader {
		t.Fatal("hash not leadable after Finish")
	}
	f.Finish("h1", Outcome{})
}

func TestFlightFollowerHonoursContext(t *testing.T) {
	f := NewFlight(nil)
	if leader, _ := f.Lead("h"); !leader {
		t.Fatal("expected to lead")
	}
	_, wait := f.Lead("h")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := wait(ctx); err == nil {
		t.Fatal("follower wait outlived its context")
	}
	f.Finish("h", Outcome{})
}

func TestFlightFinishIsIdempotent(t *testing.T) {
	f := NewFlight(nil)
	f.Lead("h")
	f.Finish("h", Outcome{Err: "safety net"})
	// The second Finish (the deferred safety net after a successful commit
	// path already finished) must be a no-op, not a panic or a new call.
	f.Finish("h", Outcome{})
	if f.Inflight() != 0 {
		t.Fatal("idempotent Finish left an open call")
	}
}
