// Package store is popkit's content-addressed result store. Every job is
// deterministic — (normalized JobSpec) → exact output bytes is a pure
// function of the spec — so a completed job's NDJSON record stream can be
// committed under the SHA-256 of its canonical spec encoding
// (expt.CanonicalSpec) and served verbatim to every later request for the
// same spec: byte-identical to a live run, at the cost of a file read.
//
// On-disk layout under the store directory:
//
//	objects/<hash>.ndjson  committed results: the canonical spec encoding on
//	                       the first line (self-describing, and re-verified
//	                       against the file name on read), then one line per
//	                       replica record — the exact journal format PR 4
//	                       introduced, so the stream layer re-emits stored
//	                       lines unchanged.
//	tmp/                   in-progress commits; emptied on Open, so a crash
//	                       mid-commit leaves debris, never a torn object.
//	index.json             LRU order and sizes, rewritten atomically. Purely
//	                       an optimization: Open reconciles it against the
//	                       objects on disk, so a stale or missing index only
//	                       costs recency information.
//
// Commits are atomic (write to tmp/, fsync, rename into objects/); reads
// validate the object end to end (hash match, contiguous successful
// replicas, terminated lines) and delete anything that fails, so a torn or
// rotted object degrades to a cache miss instead of a wrong answer.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"popkit/internal/expt"
	"popkit/internal/fault"
)

// fpCommit fires before each record line written during a commit. An error
// kind aborts the commit (tmp debris only); a panic kind simulates a crash
// mid-commit — either way no partial object becomes visible.
var fpCommit = fault.New("store/commit",
	"fires before each record line of a store commit; error aborts the commit, panic simulates a mid-commit crash")

// Options configures Open.
type Options struct {
	// Dir is the store root; created if absent.
	Dir string
	// MaxBytes caps the total object bytes (0 → 256 MiB; negative →
	// unlimited). The cap is enforced after each commit by LRU eviction,
	// except that the single most-recent object is never evicted.
	MaxBytes int64
	// MaxEntries caps the object count (0 → 4096; negative → unlimited).
	MaxEntries int
	// Metrics receives the store's counters; nil disables instrumentation.
	Metrics *Metrics
}

// entry is one committed object.
type entry struct {
	hash  string
	bytes int64
	elem  *list.Element
}

// indexFile is the persisted form of the LRU state.
type indexFile struct {
	V       int          `json:"v"`
	Entries []indexEntry `json:"entries"`
}

type indexEntry struct {
	Hash  string `json:"hash"`
	Bytes int64  `json:"bytes"`
	// Used is the entry's recency rank at persist time (higher = more
	// recently used).
	Used int `json:"used"`
}

// Store is the content-addressed result store. Safe for concurrent use;
// object reads happen outside the lock, so a large hit never blocks
// commits or other lookups.
type Store struct {
	dir        string
	maxBytes   int64
	maxEntries int
	m          *Metrics

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used
	total   int64
}

// Open loads (creating if needed) the store at opts.Dir: tmp debris from
// crashed commits is removed, the index is reconciled against the objects
// actually on disk, and the caps are enforced.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: no directory")
	}
	if opts.MaxBytes == 0 {
		opts.MaxBytes = 256 << 20
	}
	if opts.MaxEntries == 0 {
		opts.MaxEntries = 4096
	}
	if opts.Metrics == nil {
		opts.Metrics = NewMetrics(nil)
	}
	for _, d := range []string{opts.Dir, filepath.Join(opts.Dir, "objects"), filepath.Join(opts.Dir, "tmp")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{
		dir:        opts.Dir,
		maxBytes:   opts.MaxBytes,
		maxEntries: opts.MaxEntries,
		m:          opts.Metrics,
		entries:    make(map[string]*entry),
		lru:        list.New(),
	}
	// A crash mid-commit leaves its partial write in tmp/ — the rename never
	// happened, so deleting the debris is the whole recovery.
	if tmps, err := os.ReadDir(filepath.Join(opts.Dir, "tmp")); err == nil {
		for _, e := range tmps {
			os.Remove(filepath.Join(opts.Dir, "tmp", e.Name()))
		}
	}

	onDisk := make(map[string]int64)
	objs, err := os.ReadDir(filepath.Join(opts.Dir, "objects"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range objs {
		name := e.Name()
		if !strings.HasSuffix(name, ".ndjson") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		onDisk[strings.TrimSuffix(name, ".ndjson")] = info.Size()
	}

	// Replay the index's recency order for the objects that still exist;
	// anything on disk the index doesn't know about joins as least recent.
	var idx indexFile
	if raw, err := os.ReadFile(filepath.Join(opts.Dir, "index.json")); err == nil {
		json.Unmarshal(raw, &idx)
	}
	sort.SliceStable(idx.Entries, func(i, j int) bool { return idx.Entries[i].Used < idx.Entries[j].Used })
	for _, ie := range idx.Entries {
		size, ok := onDisk[ie.Hash]
		if !ok {
			continue
		}
		s.insertFrontLocked(ie.Hash, size)
		delete(onDisk, ie.Hash)
	}
	orphans := make([]string, 0, len(onDisk))
	for hash := range onDisk {
		orphans = append(orphans, hash)
	}
	sort.Strings(orphans)
	for _, hash := range orphans {
		e := &entry{hash: hash, bytes: onDisk[hash]}
		e.elem = s.lru.PushBack(e)
		s.entries[hash] = e
		s.total += e.bytes
	}

	s.evictLocked()
	s.updateGaugesLocked()
	if err := s.persistIndexLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Len and Bytes sample the store size (tests, gauges).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Metrics returns the store's counter set.
func (s *Store) Metrics() *Metrics { return s.m }

func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash+".ndjson")
}

// insertFrontLocked adds hash as most-recently-used.
func (s *Store) insertFrontLocked(hash string, size int64) {
	e := &entry{hash: hash, bytes: size}
	e.elem = s.lru.PushFront(e)
	s.entries[hash] = e
	s.total += size
}

// Get returns the committed record lines for hash (each newline-terminated,
// in replica order), or ok=false on a miss. The object is validated end to
// end before anything is returned — a torn or corrupt object is deleted
// and reported as a miss, never served truncated. The file read happens
// outside the store lock, so concurrent eviction of the same hash is
// legal: the unlink either wins (ENOENT → miss) or the open file survives
// it (POSIX keeps the inode alive), and either way the caller sees a
// consistent all-or-nothing answer.
func (s *Store) Get(hash string) ([][]byte, bool) {
	start := time.Now()
	s.mu.Lock()
	e, ok := s.entries[hash]
	if ok {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if !ok {
		s.m.Misses.Inc()
		return nil, false
	}
	lines, err := readObject(s.objectPath(hash), hash)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			// The object exists but fails validation: drop it so the next
			// request recomputes instead of looping on the same bad bytes.
			s.m.Corrupt.Inc()
			s.dropEntry(hash, e, true)
		} else {
			s.dropEntry(hash, e, false)
		}
		s.m.Misses.Inc()
		return nil, false
	}
	s.m.Hits.Inc()
	s.m.observeRead(time.Since(start))
	return lines, true
}

// dropEntry removes the entry a failed Get observed (and, when removeFile,
// its object file). The drop is conditional on the map still holding that
// same entry: a concurrent Commit of the hash installs a fresh entry (and,
// under the lock, a fresh object file), which must not be discarded just
// because an older read failed. File removal stays under the lock — paired
// with Commit renaming under the lock — so a drop can never unlink a
// freshly committed object.
func (s *Store) dropEntry(hash string, observed *entry, removeFile bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[hash]
	if !ok || e != observed {
		return
	}
	s.lru.Remove(e.elem)
	delete(s.entries, hash)
	s.total -= e.bytes
	if removeFile {
		os.Remove(s.objectPath(hash))
	}
	s.updateGaugesLocked()
	s.persistIndexLocked()
}

// readObject loads and fully validates one object file: header line present
// and hashing to the file's name, then exactly the header's replica count
// of successful records in replica order, every line newline-terminated.
func readObject(path, hash string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	header, rest, ok := cutLine(data)
	if !ok {
		return nil, errors.New("store: torn object header")
	}
	// The file name is the SHA-256 of the header bytes (Commit hashes the
	// canonical encoding it writes), so the check needs no re-encoding.
	sum := sha256.Sum256(header)
	if got := hex.EncodeToString(sum[:]); got != hash {
		return nil, fmt.Errorf("store: object header hashes to %.12s, file named %.12s", got, hash)
	}
	var spec expt.JobSpec
	if err := json.Unmarshal(header, &spec); err != nil {
		return nil, fmt.Errorf("store: bad object header: %v", err)
	}
	lines := make([][]byte, 0, spec.Replicas)
	for len(rest) > 0 {
		line, tail, ok := cutLine(rest)
		if !ok {
			return nil, errors.New("store: torn trailing record")
		}
		var rec expt.ReplicaRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("store: bad record line: %v", err)
		}
		if rec.Replica != len(lines) || rec.Err != "" {
			return nil, fmt.Errorf("store: record %d out of order or failed", rec.Replica)
		}
		lines = append(lines, append(line, '\n'))
		rest = tail
	}
	if len(lines) != spec.Replicas {
		return nil, fmt.Errorf("store: object holds %d of %d records", len(lines), spec.Replicas)
	}
	return lines, nil
}

// cutLine splits data at the first newline; ok=false means no complete line
// remains (the journal package's torn-write detection, applied to objects).
func cutLine(data []byte) (line, rest []byte, ok bool) {
	for i, b := range data {
		if b == '\n' {
			return data[:i], data[i+1:], true
		}
	}
	return nil, nil, false
}

// Commit stores the completed job's record lines under the spec's content
// hash and returns the hash. The spec must be normalized and cacheable
// (no job_id/start); lines must be the complete newline-terminated stream,
// one line per replica, in replica order. The object becomes visible
// atomically (tmp write + fsync + rename); concurrent commits of the same
// hash are idempotent. Failures leave the store unchanged.
func (s *Store) Commit(spec expt.JobSpec, lines [][]byte) (string, error) {
	if err := expt.HashableSpec(spec); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	if len(lines) != spec.Replicas {
		return "", fmt.Errorf("store: commit of %d lines for %d replicas", len(lines), spec.Replicas)
	}
	header := expt.CanonicalSpec(spec)
	hash := expt.SpecHash(spec)

	s.mu.Lock()
	_, dup := s.entries[hash]
	s.mu.Unlock()
	if dup {
		return hash, nil
	}

	// Each commit writes its own unique tmp file: a shared tmp/<hash>.tmp
	// would let concurrent commits of the same hash interleave writes via
	// independent fds and rename a corrupt object into objects/. (No defer
	// cleanup here on purpose — a failpoint panic simulates a crash, which
	// must leave its tmp debris for Open's recovery to remove.)
	f, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), hash+"-*.tmp")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	size, err := writeObject(f, header, lines)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("store: %w", err)
	}

	// Rename and index insertion happen under one critical section so a
	// concurrent dropEntry (corrupt-object path) can never unlink the new
	// object: a drop either runs entirely before the rename or sees the
	// fresh entry and backs off.
	final := s.objectPath(hash)
	s.mu.Lock()
	if _, dup := s.entries[hash]; dup {
		s.mu.Unlock()
		os.Remove(tmp)
		return hash, nil
	}
	if err := os.Rename(tmp, final); err != nil {
		s.mu.Unlock()
		os.Remove(tmp)
		return "", fmt.Errorf("store: %w", err)
	}
	syncDir(filepath.Dir(final))
	s.insertFrontLocked(hash, size)
	s.evictLocked()
	s.updateGaugesLocked()
	err = s.persistIndexLocked()
	s.mu.Unlock()
	s.m.Commits.Inc()
	return hash, err
}

// writeObject writes header+lines to f and fsyncs; the caller owns closing
// f. The commit failpoint is evaluated before every record line, so chaos
// tests can abort (error) or crash (panic) at any prefix of the object.
func writeObject(f *os.File, header []byte, lines [][]byte) (int64, error) {
	var size int64
	n, err := f.Write(append(append([]byte(nil), header...), '\n'))
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	size += int64(n)
	for _, line := range lines {
		if err := fpCommit.Inject(nil); err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		if len(line) == 0 || line[len(line)-1] != '\n' {
			return 0, errors.New("store: record line not newline-terminated")
		}
		n, err := f.Write(line)
		if err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		size += int64(n)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return size, nil
}

// syncDir best-effort fsyncs a directory so a rename survives power loss;
// errors are ignored (some filesystems refuse directory syncs).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// evictLocked enforces the caps, removing least-recently-used objects. The
// single most recent object is never evicted, so one oversized result still
// caches rather than thrashing.
func (s *Store) evictLocked() {
	over := func() bool {
		if s.maxEntries > 0 && s.lru.Len() > s.maxEntries {
			return true
		}
		return s.maxBytes > 0 && s.total > s.maxBytes
	}
	for s.lru.Len() > 1 && over() {
		back := s.lru.Back()
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.hash)
		s.total -= e.bytes
		os.Remove(s.objectPath(e.hash))
		s.m.Evictions.Inc()
	}
}

func (s *Store) updateGaugesLocked() {
	s.m.Entries.Set(int64(len(s.entries)))
	s.m.Bytes.Set(s.total)
}

// persistIndexLocked rewrites index.json atomically. Called on structural
// changes (commit, eviction, drop) — recency bumps from pure reads are only
// persisted piggybacked on the next structural write or Close, a deliberate
// trade: index writes stay off the hit path, and a crash costs only LRU
// ordering, never correctness.
func (s *Store) persistIndexLocked() error {
	idx := indexFile{V: 1, Entries: make([]indexEntry, 0, s.lru.Len())}
	used := 0
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		idx.Entries = append(idx.Entries, indexEntry{Hash: e.hash, Bytes: e.bytes, Used: used})
		used++
	}
	raw, err := json.Marshal(idx)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, "tmp", "index.json.tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "index.json")); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close persists the index (including recency updates from reads). The
// store needs no other teardown — every commit is already durable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistIndexLocked()
}
