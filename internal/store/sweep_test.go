package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"popkit/internal/expt"
	"popkit/internal/obs"
)

// countingExec returns an Execute that fabricates valid lines and counts
// invocations.
func countingExec(t *testing.T, calls *atomic.Int64) func(context.Context, expt.JobSpec) ([][]byte, error) {
	return func(_ context.Context, spec expt.JobSpec) ([][]byte, error) {
		calls.Add(1)
		return testLines(t, spec), nil
	}
}

func TestSweeperRunOrderAndDedupe(t *testing.T) {
	s := openTest(t, Options{})
	var calls atomic.Int64
	sw := &Sweeper{
		Store:   s,
		Flight:  NewFlight(s.Metrics()),
		Workers: 1, // sequential, so the duplicate point is a deterministic hit
		Execute: countingExec(t, &calls),
	}
	a, b := testSpec(1, 2), testSpec(2, 2)
	points := []Point{
		{Spec: a},
		{Spec: a}, // duplicate: must hit, not recompute
		{Spec: b},
		{Err: errors.New("bad point")},
	}
	var got []expt.SweepResult
	sum := sw.Run(context.Background(), points, func(res expt.SweepResult) {
		got = append(got, res)
	})
	if sum != (expt.SweepSummary{Points: 4, Hits: 1, Misses: 2, Errors: 1}) {
		t.Fatalf("summary = %+v, want 1 hit, 2 misses, 1 error", sum)
	}
	wantCache := []string{"miss", "hit", "miss", ""}
	for i, res := range got {
		if res.Point != i || res.Cache != wantCache[i] {
			t.Fatalf("result %d = %+v, want point %d cache %q", i, res, i, wantCache[i])
		}
	}
	if got[3].Err == "" || got[3].Hash != "" {
		t.Fatalf("invalid point = %+v, want a hashless error line", got[3])
	}
	if got[0].Records != 2 || got[0].Bytes <= 0 {
		t.Fatalf("miss result = %+v, want 2 records with positive bytes", got[0])
	}
	if calls.Load() != 2 {
		t.Fatalf("execute ran %d times, want 2 (a once, b once)", calls.Load())
	}
	if s.Bytes() <= 0 {
		t.Fatal("store reports zero bytes after two commits")
	}
}

func TestSweeperCancelledContextFailsPoints(t *testing.T) {
	sw := &Sweeper{
		Flight:  NewFlight(nil),
		Execute: func(context.Context, expt.JobSpec) ([][]byte, error) { panic("must not execute") },
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum := sw.Run(ctx, []Point{{Spec: testSpec(1, 1)}}, func(res expt.SweepResult) {
		if res.Err == "" {
			t.Errorf("cancelled point = %+v, want an error line", res)
		}
	})
	if sum.Errors != 1 {
		t.Fatalf("summary = %+v, want 1 error", sum)
	}
}

// leadThenFollow drives resolve for the same spec from two goroutines with
// the leader's Execute parked until the follower is waiting on the flight.
// It returns (leader result, follower result).
func leadThenFollow(t *testing.T, sw *Sweeper, spec expt.JobSpec, exec func() ([][]byte, error)) (expt.SweepResult, expt.SweepResult) {
	t.Helper()
	started := make(chan struct{})
	release := make(chan struct{})
	sw.Execute = func(context.Context, expt.JobSpec) ([][]byte, error) {
		select {
		case <-started: // follower retry path: run immediately
		default:
			close(started)
			<-release
		}
		return exec()
	}
	var leadRes, followRes expt.SweepResult
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		leadRes = sw.resolve(context.Background(), 0, Point{Spec: spec})
	}()
	<-started
	go func() {
		defer wg.Done()
		followRes = sw.resolve(context.Background(), 1, Point{Spec: spec})
	}()
	// Hold the leader until the follower has actually coalesced onto it.
	deadline := time.Now().Add(5 * time.Second)
	for sw.Flight.m.Coalesced.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced onto the in-flight leader")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	return leadRes, followRes
}

// TestSweeperStorelessCoalesce: without a store, a concurrent duplicate
// point coalesces onto the in-flight leader and reports "inflight".
func TestSweeperStorelessCoalesce(t *testing.T) {
	sw := &Sweeper{Flight: NewFlight(NewMetrics(obs.NewRegistry()))}
	spec := testSpec(3, 2)
	lines := testLines(t, spec)
	lead, follow := leadThenFollow(t, sw, spec, func() ([][]byte, error) { return lines, nil })
	if lead.Cache != "miss" || lead.Err != "" {
		t.Fatalf("leader = %+v, want a clean miss", lead)
	}
	if follow.Cache != "inflight" || follow.Records != len(lines) {
		t.Fatalf("follower = %+v, want an inflight coalesce with %d records", follow, len(lines))
	}
}

// TestSweeperCommittedOutcomeBecomesHit: with a store, the follower prefers
// re-reading the committed object, so its manifest line is a true "hit".
func TestSweeperCommittedOutcomeBecomesHit(t *testing.T) {
	s := openTest(t, Options{})
	sw := &Sweeper{Store: s, Flight: NewFlight(s.Metrics())}
	spec := testSpec(4, 2)
	lines := testLines(t, spec)
	lead, follow := leadThenFollow(t, sw, spec, func() ([][]byte, error) { return lines, nil })
	if lead.Cache != "miss" {
		t.Fatalf("leader = %+v, want a miss", lead)
	}
	if follow.Cache != "hit" || follow.Records != len(lines) {
		t.Fatalf("follower = %+v, want a store hit", follow)
	}
}

// TestSweeperFollowerRetriesAfterLeaderFailure: a failed leader hands the
// point back — the waiting follower leads the retry itself.
func TestSweeperFollowerRetriesAfterLeaderFailure(t *testing.T) {
	s := openTest(t, Options{})
	sw := &Sweeper{Store: s, Flight: NewFlight(s.Metrics())}
	spec := testSpec(5, 2)
	lines := testLines(t, spec)
	var calls atomic.Int64
	lead, follow := leadThenFollow(t, sw, spec, func() ([][]byte, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("worker died")
		}
		return lines, nil
	})
	if lead.Err == "" || lead.Cache != "miss" {
		t.Fatalf("failed leader = %+v, want an error miss", lead)
	}
	if follow.Err != "" || follow.Cache != "miss" || follow.Records != len(lines) {
		t.Fatalf("follower = %+v, want a clean retried miss", follow)
	}
	if calls.Load() != 2 {
		t.Fatalf("execute ran %d times, want 2 (failure then retry)", calls.Load())
	}
}

// TestInertMetricsStore: a store opened without a registry (popserved with
// metrics disabled) must still cache; its snapshot is all zeros.
func TestInertMetricsStore(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), Metrics: NewMetrics(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := testSpec(6, 1)
	hash, err := s.Commit(spec, testLines(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(hash); !ok {
		t.Fatal("inert-metrics store missed a committed object")
	}
	if snap := s.Metrics().Snapshot(); snap.Hits != 0 || snap.Commits != 0 {
		t.Fatalf("inert snapshot = %+v, want zeros", snap)
	}
	var nilM *Metrics
	if snap := nilM.Snapshot(); snap.Hits != 0 || snap.Commits != 0 || snap.Entries != 0 {
		t.Fatalf("nil metrics snapshot = %+v, want zero value", snap)
	}
	nilM.observeRead(time.Millisecond) // must not panic
}
