package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"popkit/internal/expt"
	"popkit/internal/obs"
)

// testSpec returns a normalized, cacheable spec whose seed varies the
// content hash — the only spec fields the store itself interprets are
// Replicas (record count) and the canonical encoding (the key).
func testSpec(seed uint64, replicas int) expt.JobSpec {
	return expt.JobSpec{Protocol: "leader", N: 128, Seed: seed, Replicas: replicas}
}

// testLines fabricates a valid committed stream for spec: one successful
// record per replica, newline-terminated, in replica order.
func testLines(t *testing.T, spec expt.JobSpec) [][]byte {
	t.Helper()
	lines := make([][]byte, spec.Replicas)
	for i := range lines {
		rec := expt.ReplicaRecord{
			Replica:   i,
			Protocol:  spec.Protocol,
			N:         spec.N,
			Seed:      expt.ReplicaSeed(spec.Seed, i),
			Rounds:    42,
			Converged: true,
		}
		line, err := rec.MarshalLine()
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = line
	}
	return lines
}

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Metrics == nil {
		// Registered counters, so tests can assert on Snapshot values.
		opts.Metrics = NewMetrics(obs.NewRegistry())
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCommitGetRoundTrip(t *testing.T) {
	s := openTest(t, Options{Metrics: NewMetrics(obs.NewRegistry())})
	spec := testSpec(1, 3)
	lines := testLines(t, spec)
	hash, err := s.Commit(spec, lines)
	if err != nil {
		t.Fatal(err)
	}
	if hash != expt.SpecHash(spec) {
		t.Fatalf("Commit returned %s, want the spec hash %s", hash, expt.SpecHash(spec))
	}
	got, ok := s.Get(hash)
	if !ok {
		t.Fatal("committed object missed")
	}
	if len(got) != len(lines) {
		t.Fatalf("got %d lines, want %d", len(got), len(lines))
	}
	for i := range lines {
		if !bytes.Equal(got[i], lines[i]) {
			t.Fatalf("line %d not byte-identical:\n got %s\nwant %s", i, got[i], lines[i])
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Hits != 1 || snap.Commits != 1 || snap.Entries != 1 {
		t.Fatalf("snapshot = %+v, want hits=1 commits=1 entries=1", snap)
	}
}

func TestGetMiss(t *testing.T) {
	s := openTest(t, Options{})
	if _, ok := s.Get(expt.SpecHash(testSpec(99, 1))); ok {
		t.Fatal("empty store reported a hit")
	}
	if snap := s.Metrics().Snapshot(); snap.Misses != 1 {
		t.Fatalf("misses = %d, want 1", snap.Misses)
	}
}

func TestCommitIsIdempotent(t *testing.T) {
	s := openTest(t, Options{})
	spec := testSpec(1, 2)
	lines := testLines(t, spec)
	h1, err := s.Commit(spec, lines)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.Commit(spec, lines)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || s.Len() != 1 {
		t.Fatalf("duplicate commit: hashes %s/%s, %d entries", h1, h2, s.Len())
	}
}

func TestCommitValidation(t *testing.T) {
	s := openTest(t, Options{})
	spec := testSpec(1, 2)
	if _, err := s.Commit(spec, testLines(t, spec)[:1]); err == nil {
		t.Fatal("short commit accepted")
	}
	sharded := spec
	sharded.Start = 1
	if _, err := s.Commit(sharded, testLines(t, spec)); err == nil {
		t.Fatal("windowed spec accepted")
	}
	bad := testLines(t, spec)
	bad[1] = bytes.TrimRight(bad[1], "\n")
	if _, err := s.Commit(spec, bad); err == nil {
		t.Fatal("unterminated line accepted")
	}
	if s.Len() != 0 {
		t.Fatalf("failed commits left %d entries", s.Len())
	}
}

func TestLRUEvictionByEntries(t *testing.T) {
	s := openTest(t, Options{MaxEntries: 2})
	specs := []expt.JobSpec{testSpec(1, 1), testSpec(2, 1), testSpec(3, 1)}
	var hashes []string
	for _, sp := range specs[:2] {
		h, err := s.Commit(sp, testLines(t, sp))
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
	}
	// Touch the older entry so it becomes most recent; the next commit must
	// evict the untouched one.
	if _, ok := s.Get(hashes[0]); !ok {
		t.Fatal("warm entry missed")
	}
	h3, err := s.Commit(specs[2], testLines(t, specs[2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(hashes[1]); ok {
		t.Fatal("least-recently-used entry survived the cap")
	}
	for _, h := range []string{hashes[0], h3} {
		if _, ok := s.Get(h); !ok {
			t.Fatalf("entry %.12s evicted out of LRU order", h)
		}
	}
	if snap := s.Metrics().Snapshot(); snap.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", snap.Evictions)
	}
	// The object file itself must be gone, not just the index entry.
	if _, err := os.Stat(s.objectPath(hashes[1])); !os.IsNotExist(err) {
		t.Fatalf("evicted object still on disk (err=%v)", err)
	}
}

func TestByteCapNeverEvictsTheNewestEntry(t *testing.T) {
	s := openTest(t, Options{MaxBytes: 1}) // below any real object size
	spec := testSpec(1, 2)
	if _, err := s.Commit(spec, testLines(t, spec)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatal("oversized single object was evicted; the newest entry must always cache")
	}
	spec2 := testSpec(2, 2)
	if _, err := s.Commit(spec2, testLines(t, spec2)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("byte cap not enforced: %d entries for a 1-byte cap", s.Len())
	}
	if _, ok := s.Get(expt.SpecHash(spec2)); !ok {
		t.Fatal("newest entry was the one evicted")
	}
}

func TestReopenPreservesObjectsAndRecency(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	a, b := testSpec(1, 1), testSpec(2, 1)
	ha, err := s.Commit(a, testLines(t, a))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(b, testLines(t, b)); err != nil {
		t.Fatal(err)
	}
	// Bump a to most recent, then persist recency via Close.
	if _, ok := s.Get(ha); !ok {
		t.Fatal("warm entry missed")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with room for one entry: the recency order must survive, so a
	// (most recent) stays and b is evicted at Open.
	s2 := openTest(t, Options{Dir: dir, MaxEntries: 1})
	if s2.Len() != 1 {
		t.Fatalf("reopen kept %d entries under a 1-entry cap", s2.Len())
	}
	if _, ok := s2.Get(ha); !ok {
		t.Fatal("most-recent entry did not survive reopen")
	}
}

func TestOpenAdoptsOrphanObjects(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	spec := testSpec(7, 2)
	hash, err := s.Commit(spec, testLines(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Lose the index: the object on disk is all that remains.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, Options{Dir: dir})
	if _, ok := s2.Get(hash); !ok {
		t.Fatal("orphan object not adopted on reopen")
	}
}

func TestOpenCleansTmpDebris(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(dir, "tmp", "deadbeef.tmp")
	if err := os.WriteFile(debris, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	openTest(t, Options{Dir: dir})
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatalf("tmp debris survived Open (err=%v)", err)
	}
}

func TestCorruptObjectIsDroppedNotServed(t *testing.T) {
	s := openTest(t, Options{})
	spec := testSpec(1, 3)
	hash, err := s.Commit(spec, testLines(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record: a torn tail with no final newline.
	path := s.objectPath(hash)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(hash); ok {
		t.Fatal("truncated object was served")
	}
	snap := s.Metrics().Snapshot()
	if snap.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", snap.Corrupt)
	}
	// The bad object is deleted, so the next lookup is a clean miss that a
	// recompute can fill.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt object still on disk (err=%v)", err)
	}
	if _, ok := s.Get(hash); ok {
		t.Fatal("dropped object reported a hit")
	}
}

func TestMismatchedHeaderHashRejected(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	spec := testSpec(1, 1)
	hash, err := s.Commit(spec, testLines(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Rename the object to a different (valid-looking) hash: the header no
	// longer matches the file name, so serving it would answer the wrong spec.
	wrong := "0000000000000000000000000000000000000000000000000000000000000000"
	if err := os.Rename(s.objectPath(hash), s.objectPath(wrong)); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "index.json"))
	s2 := openTest(t, Options{Dir: dir})
	if _, ok := s2.Get(wrong); ok {
		t.Fatal("object with mismatched header hash was served")
	}
	if snap := s2.Metrics().Snapshot(); snap.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", snap.Corrupt)
	}
}
