package store

import (
	"context"

	"popkit/internal/expt"
)

// Point is one expanded grid point handed to a Sweeper: the normalized
// spec, or the normalization error that disqualified it (one bad point
// fails that point's manifest line, not the sweep).
type Point struct {
	Spec expt.JobSpec
	Err  error
}

// Sweeper resolves a sweep's grid points against the store with
// single-flight dedupe. It is shared by the single-node server and the
// cluster coordinator — only Execute (how a miss is computed) differs.
type Sweeper struct {
	// Store answers hits; nil disables caching (every point is a miss or an
	// inflight coalesce, still deduped within and across sweeps).
	Store *Store
	// Flight coalesces concurrent identical points. Required.
	Flight *Flight
	// Workers bounds concurrently resolving points (min 1).
	Workers int
	// Execute computes one miss: run the spec and return its complete
	// newline-terminated record lines in replica order. It inherits the
	// serving layer's own backpressure behavior (bounded queue, shard
	// dispatch) — the Sweeper imposes none of its own beyond Workers.
	Execute func(ctx context.Context, spec expt.JobSpec) ([][]byte, error)
}

// Run resolves every point and calls emit with one SweepResult per point,
// in point order, as each becomes available. The returned summary tallies
// the manifest. ctx cancellation fails the unresolved points.
func (sw *Sweeper) Run(ctx context.Context, points []Point, emit func(expt.SweepResult)) expt.SweepSummary {
	n := len(points)
	results := make([]expt.SweepResult, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	workers := sw.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range idx {
				results[i] = sw.resolve(ctx, i, points[i])
				close(done[i])
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
	}()

	var sum expt.SweepSummary
	sum.Points = n
	for i := 0; i < n; i++ {
		<-done[i]
		res := results[i]
		switch {
		case res.Err != "":
			sum.Errors++
		case res.Cache == "hit":
			sum.Hits++
		case res.Cache == "miss":
			sum.Misses++
		case res.Cache == "inflight":
			sum.Inflight++
		}
		emit(res)
	}
	return sum
}

// resolve settles one point: store hit, coalesce onto an identical
// in-flight computation, or lead the computation itself (committing on
// success when a store is configured).
func (sw *Sweeper) resolve(ctx context.Context, i int, p Point) expt.SweepResult {
	res := expt.SweepResult{Point: i, Spec: p.Spec}
	if p.Err != nil {
		res.Err = p.Err.Error()
		return res
	}
	hash := expt.SpecHash(p.Spec)
	res.Hash = hash
	for {
		if err := ctx.Err(); err != nil {
			res.Err = err.Error()
			return res
		}
		if sw.Store != nil {
			if lines, ok := sw.Store.Get(hash); ok {
				res.Cache = "hit"
				res.Records = len(lines)
				res.Bytes = totalBytes(lines)
				return res
			}
		}
		leader, wait := sw.Flight.Lead(hash)
		if leader {
			break
		}
		out, err := wait(ctx)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		if out.Err != "" {
			// The leader failed; loop to try leading (or hitting) ourselves.
			continue
		}
		if out.Committed && sw.Store != nil {
			// Prefer re-reading the committed object so the manifest's "hit"
			// truly means "served from the store"; fall through to the loop.
			continue
		}
		res.Cache = "inflight"
		res.Records = out.Records
		res.Bytes = out.Bytes
		return res
	}

	out := Outcome{}
	defer func() { sw.Flight.Finish(hash, out) }()
	lines, err := sw.Execute(ctx, p.Spec)
	if err != nil {
		out.Err = err.Error()
		res.Cache = "miss"
		res.Err = err.Error()
		return res
	}
	out.Records = len(lines)
	out.Bytes = totalBytes(lines)
	if sw.Store != nil {
		if _, err := sw.Store.Commit(p.Spec, lines); err == nil {
			out.Committed = true
		}
	}
	res.Cache = "miss"
	res.Records = out.Records
	res.Bytes = out.Bytes
	return res
}

func totalBytes(lines [][]byte) int64 {
	var n int64
	for _, l := range lines {
		n += int64(len(l))
	}
	return n
}
