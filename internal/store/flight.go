package store

import (
	"context"
	"sync"
)

// Outcome is what a single-flight leader reports when its computation
// settles, carried to the followers so they can answer without touching
// the fleet — even on a server running without a store (Committed=false,
// Err="" still means "the work happened; here are its counts").
type Outcome struct {
	// Committed reports that the result was committed to the store, so a
	// follower's next Get will hit (barring eviction).
	Committed bool
	// Records / Bytes size the computed stream (manifest reporting).
	Records int
	Bytes   int64
	// Err is the leader's failure, if any; followers treat a failed leader
	// as "try leading yourself" rather than inheriting the failure.
	Err string
}

// flightCall is one in-flight computation.
type flightCall struct {
	done chan struct{}
	out  Outcome
}

// Flight coalesces concurrent identical computations (same content hash)
// onto one leader. It is deliberately separate from the Store: sweep
// dedupe wants single-flight even when no store is configured.
type Flight struct {
	m *Metrics

	mu    sync.Mutex
	calls map[string]*flightCall
}

// NewFlight builds a Flight; m (may be nil) receives the coalesced counter.
func NewFlight(m *Metrics) *Flight {
	return &Flight{m: m, calls: make(map[string]*flightCall)}
}

// Lead claims leadership of hash. When leader is true the caller must run
// the computation and call Finish exactly once (success or failure —
// deferred, so panics still release followers). Otherwise wait blocks
// until the current leader finishes and returns its outcome; a failed
// leader's followers typically re-check the store and call Lead again.
func (f *Flight) Lead(hash string) (leader bool, wait func(ctx context.Context) (Outcome, error)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if call, ok := f.calls[hash]; ok {
		if f.m != nil {
			f.m.Coalesced.Inc()
		}
		return false, func(ctx context.Context) (Outcome, error) {
			select {
			case <-call.done:
				return call.out, nil
			case <-ctx.Done():
				return Outcome{}, ctx.Err()
			}
		}
	}
	f.calls[hash] = &flightCall{done: make(chan struct{})}
	return true, nil
}

// Finish settles the leader's call: followers wake with out, and the hash
// becomes leadable again. Extra Finish calls for a hash with no open call
// are no-ops (the deferred-safety-net pattern calls Finish twice on the
// error path).
func (f *Flight) Finish(hash string, out Outcome) {
	f.mu.Lock()
	call, ok := f.calls[hash]
	if ok {
		delete(f.calls, hash)
	}
	f.mu.Unlock()
	if ok {
		call.out = out
		close(call.done)
	}
}

// Inflight samples the number of open calls (tests).
func (f *Flight) Inflight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
