package store

import (
	"time"

	"popkit/internal/obs"
)

// Metrics is the store's counter set, registered on the embedding server's
// obs.Registry so store series appear in the same /metrics exposition
// (popkit_store_* family names). NewMetrics(nil) yields all-nil series —
// every operation is then a no-op — so an unregistered store still works.
type Metrics struct {
	// Hits / Misses count Get resolutions. A miss that later coalesces onto
	// an in-flight computation still counts here: the store itself had no
	// bytes at lookup time.
	Hits   *obs.Counter
	Misses *obs.Counter
	// Evictions counts objects removed by the LRU/byte caps; Corrupt counts
	// objects dropped because validation failed at read time (torn commit,
	// bit rot) — corrupt objects are deleted and re-resolved as misses,
	// never served.
	Evictions *obs.Counter
	Corrupt   *obs.Counter
	// Coalesced counts requests that joined another request's in-flight
	// computation instead of running their own (single-flight).
	Coalesced *obs.Counter
	// Commits counts objects successfully committed.
	Commits *obs.Counter

	// Entries / Bytes track the store's current size.
	Entries *obs.GaugeInt
	Bytes   *obs.GaugeInt

	// ReadLatency is the wall-clock histogram of successful store reads
	// (lookup through validated object load).
	ReadLatency *obs.Histogram
}

// NewMetrics registers the store series on reg (nil reg → inert metrics).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Hits:        reg.Counter("popkit_store_hits_total", "result-store lookups served from a committed object"),
		Misses:      reg.Counter("popkit_store_misses_total", "result-store lookups that found no valid object"),
		Evictions:   reg.Counter("popkit_store_evictions_total", "objects evicted by the LRU/byte caps"),
		Corrupt:     reg.Counter("popkit_store_corrupt_total", "objects dropped because read-time validation failed"),
		Coalesced:   reg.Counter("popkit_store_singleflight_coalesced_total", "requests coalesced onto an in-flight identical computation"),
		Commits:     reg.Counter("popkit_store_commits_total", "objects committed to the store"),
		Entries:     reg.Gauge("popkit_store_entries", "objects currently stored"),
		Bytes:       reg.Gauge("popkit_store_bytes", "bytes currently stored"),
		ReadLatency: reg.Histogram("popkit_store_read_duration_seconds", "wall-clock time of successful store reads"),
	}
}

// Snapshot is the store's slice of the /metrics JSON document.
type Snapshot struct {
	Hits        int64                 `json:"hits"`
	Misses      int64                 `json:"misses"`
	Evictions   int64                 `json:"evictions"`
	Corrupt     int64                 `json:"corrupt"`
	Coalesced   int64                 `json:"singleflight_coalesced"`
	Commits     int64                 `json:"commits"`
	Entries     int64                 `json:"entries"`
	Bytes       int64                 `json:"bytes"`
	ReadLatency obs.HistogramSnapshot `json:"read_latency"`
}

// Snapshot renders the counters (zero value for a nil receiver).
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	return Snapshot{
		Hits:        int64(m.Hits.Load()),
		Misses:      int64(m.Misses.Load()),
		Evictions:   int64(m.Evictions.Load()),
		Corrupt:     int64(m.Corrupt.Load()),
		Coalesced:   int64(m.Coalesced.Load()),
		Commits:     int64(m.Commits.Load()),
		Entries:     m.Entries.Load(),
		Bytes:       m.Bytes.Load(),
		ReadLatency: m.ReadLatency.Snapshot(),
	}
}

// observeRead is a nil-safe latency observation helper.
func (m *Metrics) observeRead(d time.Duration) {
	if m == nil {
		return
	}
	m.ReadLatency.Observe(d)
}
