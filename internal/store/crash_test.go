package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"popkit/internal/expt"
	"popkit/internal/fault"
)

// TestTornCommitErrorNeverServed aborts a commit mid-object via the
// store/commit failpoint: the store must stay unchanged, leave no visible
// object, and serve a clean miss — never a truncated stream.
func TestTornCommitErrorNeverServed(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	spec := testSpec(1, 4)
	lines := testLines(t, spec)

	// Fail before the third record line, once.
	if err := fault.Enable("store/commit=error(after=2,times=1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(spec, lines); err == nil {
		t.Fatal("torn commit reported success")
	}
	hash := expt.SpecHash(spec)
	if _, ok := s.Get(hash); ok {
		t.Fatal("torn commit became visible")
	}
	if s.Len() != 0 {
		t.Fatalf("torn commit left %d entries", s.Len())
	}
	if _, err := os.Stat(s.objectPath(hash)); !os.IsNotExist(err) {
		t.Fatalf("torn object visible in objects/ (err=%v)", err)
	}

	// The failpoint is spent (times=1): the retry commits cleanly and the
	// full stream is served.
	if _, err := s.Commit(spec, lines); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(hash)
	if !ok || len(got) != spec.Replicas {
		t.Fatalf("recovery commit not served whole: ok=%v lines=%d", ok, len(got))
	}
}

// TestTornCommitPanicLeavesOnlyTmpDebris simulates a crash mid-commit (panic
// kind): the partial write stays in tmp/, never objects/, and the next Open
// removes it — the journal torn-tail recovery pattern applied to the store.
func TestTornCommitPanicLeavesOnlyTmpDebris(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	spec := testSpec(2, 3)
	lines := testLines(t, spec)
	if err := fault.Enable("store/commit=panic(after=1,times=1)"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("commit did not panic")
			}
		}()
		s.Commit(spec, lines)
	}()
	hash := expt.SpecHash(spec)
	if _, err := os.Stat(s.objectPath(hash)); !os.IsNotExist(err) {
		t.Fatalf("crashed commit visible in objects/ (err=%v)", err)
	}
	// Each commit writes a unique tmp file named <hash>-<rand>.tmp.
	debris, err := filepath.Glob(filepath.Join(dir, "tmp", hash+"-*.tmp"))
	if err != nil || len(debris) == 0 {
		t.Fatalf("crashed commit left no tmp debris to recover from (err=%v)", err)
	}
	// Recovery: reopen cleans the debris; the object is still absent.
	s.Close()
	s2 := openTest(t, Options{Dir: dir})
	for _, tmp := range debris {
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Fatalf("tmp debris %s survived recovery Open (err=%v)", tmp, err)
		}
	}
	if _, ok := s2.Get(hash); ok {
		t.Fatal("crashed commit served after recovery")
	}
}

// TestConcurrentSameHashCommits hammers Commit with one spec from many
// goroutines under -race: every call must succeed (the documented
// idempotency contract), the object must validate whole afterwards, and no
// tmp debris may leak. With a shared tmp/<hash>.tmp this interleaved writes
// from independent fds and could rename a corrupt object into objects/.
func TestConcurrentSameHashCommits(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir})
	spec := testSpec(7, 4)
	lines := testLines(t, spec)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := s.Commit(spec, lines); err != nil {
					errs <- fmt.Errorf("commit: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	got, ok := s.Get(expt.SpecHash(spec))
	if !ok || len(got) != spec.Replicas {
		t.Fatalf("object after concurrent commits: ok=%v lines=%d, want whole stream", ok, len(got))
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("store holds %d entries, want 1", n)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "tmp", "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("concurrent commits leaked tmp files: %v", leftovers)
	}
}

// TestEvictionUnderConcurrentReads hammers Get while commits force constant
// eviction of the same entries. Run under -race: the invariant is that every
// Get returns either a complete stream or a miss — never a partial result,
// never a data race.
func TestEvictionUnderConcurrentReads(t *testing.T) {
	s := openTest(t, Options{MaxEntries: 2})
	const nSpecs = 6
	specs := make([]expt.JobSpec, nSpecs)
	hashes := make([]string, nSpecs)
	allLines := make([][][]byte, nSpecs)
	for i := range specs {
		specs[i] = testSpec(uint64(i+1), 2)
		hashes[i] = expt.SpecHash(specs[i])
		allLines[i] = testLines(t, specs[i])
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				idx := (g + i) % nSpecs
				if lines, ok := s.Get(hashes[idx]); ok && len(lines) != specs[idx].Replicas {
					errs <- fmt.Errorf("partial hit: %d of %d lines", len(lines), specs[idx].Replicas)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			idx := i % nSpecs
			if _, err := s.Commit(specs[idx], allLines[idx]); err != nil {
				errs <- fmt.Errorf("commit: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := s.Len(); n > 2 {
		t.Fatalf("cap not enforced under concurrency: %d entries", n)
	}
}
