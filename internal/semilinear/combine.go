package semilinear

import (
	"fmt"
	"strings"

	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// The semi-linear predicates are exactly the boolean closure of threshold
// and modulo predicates [AAD+06]. And, Or and Not close the Predicate
// interface under boolean combinations; ComboSlowBox stably computes a
// combination by running one slow blackbox per atom and deriving each
// agent's decided bits with local combination rules — the computation
// remains stable because every atom's blackbox is stable.

// AndPred is the conjunction of predicates.
type AndPred struct{ Parts []Predicate }

// Eval implements Predicate.
func (p AndPred) Eval(counts []int64) bool {
	for _, q := range p.Parts {
		if !q.Eval(counts) {
			return false
		}
	}
	return true
}

// Arity implements Predicate.
func (p AndPred) Arity() int { return maxArity(p.Parts) }

// Name implements Predicate.
func (p AndPred) Name() string { return joinNames(p.Parts, " ∧ ") }

// OrPred is the disjunction of predicates.
type OrPred struct{ Parts []Predicate }

// Eval implements Predicate.
func (p OrPred) Eval(counts []int64) bool {
	for _, q := range p.Parts {
		if q.Eval(counts) {
			return true
		}
	}
	return false
}

// Arity implements Predicate.
func (p OrPred) Arity() int { return maxArity(p.Parts) }

// Name implements Predicate.
func (p OrPred) Name() string { return joinNames(p.Parts, " ∨ ") }

// NotPred is the negation of a predicate.
type NotPred struct{ Inner Predicate }

// Eval implements Predicate.
func (p NotPred) Eval(counts []int64) bool { return !p.Inner.Eval(counts) }

// Arity implements Predicate.
func (p NotPred) Arity() int { return p.Inner.Arity() }

// Name implements Predicate.
func (p NotPred) Name() string { return "¬(" + p.Inner.Name() + ")" }

func maxArity(ps []Predicate) int {
	m := 0
	for _, p := range ps {
		if a := p.Arity(); a > m {
			m = a
		}
	}
	return m
}

func joinNames(ps []Predicate, sep string) string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = "(" + p.Name() + ")"
	}
	return strings.Join(names, sep)
}

// atoms flattens a boolean combination into its threshold/mod atoms and
// returns an evaluator of the combination over the atoms' truth values.
func atoms(p Predicate) ([]Predicate, func(vals []bool) bool, error) {
	switch q := p.(type) {
	case Threshold, Mod:
		return []Predicate{q}, func(vals []bool) bool { return vals[0] }, nil
	case NotPred:
		inner, eval, err := atoms(q.Inner)
		return inner, func(vals []bool) bool { return !eval(vals) }, err
	case AndPred:
		return combineAtoms(q.Parts, func(vs []bool) bool {
			for _, v := range vs {
				if !v {
					return false
				}
			}
			return true
		})
	case OrPred:
		return combineAtoms(q.Parts, func(vs []bool) bool {
			for _, v := range vs {
				if v {
					return true
				}
			}
			return false
		})
	}
	return nil, nil, fmt.Errorf("semilinear: unsupported predicate %T", p)
}

func combineAtoms(parts []Predicate, fold func([]bool) bool) ([]Predicate, func([]bool) bool, error) {
	var all []Predicate
	var evals []func([]bool) bool
	var offsets []int
	for _, part := range parts {
		sub, eval, err := atoms(part)
		if err != nil {
			return nil, nil, err
		}
		offsets = append(offsets, len(all))
		all = append(all, sub...)
		evals = append(evals, eval)
	}
	sizes := make([]int, len(parts))
	for i := range parts {
		end := len(all)
		if i+1 < len(offsets) {
			end = offsets[i+1]
		}
		sizes[i] = end - offsets[i]
	}
	return all, func(vals []bool) bool {
		out := make([]bool, len(parts))
		for i := range parts {
			out[i] = evals[i](vals[offsets[i] : offsets[i]+sizes[i]])
		}
		return fold(out)
	}, nil
}

// ComboSlowBox stably computes a boolean combination of threshold/mod
// atoms: one SlowBox per atom plus derivation rules computing the
// combination of the atoms' decided bits into the output pair (D1, D0).
type ComboSlowBox struct {
	Pred  Predicate
	Boxes []*SlowBox
	D0    bitmask.Var
	D1    bitmask.Var

	eval func([]bool) bool
	rs   *rules.Ruleset
}

// NewComboSlowBox builds the combined slow blackbox over the space.
func NewComboSlowBox(sp *bitmask.Space, prefix string, pred Predicate) (*ComboSlowBox, error) {
	atomPreds, eval, err := atoms(pred)
	if err != nil {
		return nil, err
	}
	c := &ComboSlowBox{
		Pred: pred,
		D0:   sp.Bool(prefix + "D0"),
		D1:   sp.Bool(prefix + "D1"),
		eval: eval,
	}
	var parts []*rules.Ruleset
	for i, ap := range atomPreds {
		box := NewSlowBox(sp, fmt.Sprintf("%sA%d", prefix, i), ap)
		c.Boxes = append(c.Boxes, box)
		parts = append(parts, box.Rules())
	}

	// Derivation: an agent whose combined output disagrees with the
	// combination of its atom bits fixes it — one rule per truth-vector.
	// (2^atoms rules; combinations of more than ~6 atoms are impractical
	// anyway, matching the constant-state regime.)
	if len(atomPreds) > 16 {
		return nil, fmt.Errorf("semilinear: too many atoms (%d)", len(atomPreds))
	}
	derive := rules.NewRuleset(sp)
	var group []rules.Rule
	for mask := 0; mask < 1<<len(atomPreds); mask++ {
		vals := make([]bool, len(atomPreds))
		guard := make([]bitmask.Formula, 0, len(atomPreds)+1)
		for i := range atomPreds {
			vals[i] = mask&(1<<i) != 0
			if vals[i] {
				guard = append(guard, bitmask.And(bitmask.Is(c.Boxes[i].D1), bitmask.IsNot(c.Boxes[i].D0)))
			} else {
				guard = append(guard, bitmask.And(bitmask.Is(c.Boxes[i].D0), bitmask.IsNot(c.Boxes[i].D1)))
			}
		}
		out := eval(vals)
		var want bitmask.Formula
		if out {
			want = bitmask.And(bitmask.Is(c.D1), bitmask.IsNot(c.D0))
		} else {
			want = bitmask.And(bitmask.Is(c.D0), bitmask.IsNot(c.D1))
		}
		guard = append(guard, bitmask.Not(want))
		group = append(group, rules.MustNew(bitmask.And(guard...), bitmask.True(), want, bitmask.True()))
	}
	derive.AddGroup(prefix+"derive", 1, group...)
	parts = append(parts, derive)
	c.rs = rules.ComposeThreads(parts...)
	return c, nil
}

// Rules returns the combined ruleset.
func (c *ComboSlowBox) Rules() *rules.Ruleset { return c.rs }

// InitAgent initializes every atom's blackbox on the agent.
func (c *ComboSlowBox) InitAgent(s bitmask.State, colour int) bitmask.State {
	for _, b := range c.Boxes {
		s = b.InitAgent(s, colour)
	}
	// Seed the combined output from the (initial) atom bits.
	vals := make([]bool, len(c.Boxes))
	for i, b := range c.Boxes {
		vals[i] = b.D1.Get(s)
	}
	out := c.eval(vals)
	s = c.D1.Set(s, out)
	return c.D0.Set(s, !out)
}

// Output reads an agent's combined decided output.
func (c *ComboSlowBox) Output(s bitmask.State) bool { return c.D1.Get(s) }

// Canonical reports whether every atom's blackbox has reached its final
// marker configuration.
func (c *ComboSlowBox) Canonical(count func(f bitmask.Formula) int64) bool {
	for _, b := range c.Boxes {
		if !b.Canonical(count) {
			return false
		}
	}
	return true
}
