package semilinear

import (
	"math"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
	"popkit/internal/rules"
)

// Exact is the SemilinearPredicateExact protocol of §6.3: an always-
// correct computation of a semi-linear predicate that is also fast w.h.p.
// It couples three mechanisms under the framework's good-iteration
// semantics:
//
//   - a leader-election thread (coin-halving on L with the coalescing R
//     fallback, as in §6.1), giving a unique leader fast w.h.p. and with
//     certainty eventually;
//   - the fast blackbox (threshold predicates): each iteration resets the
//     signed tokens, runs Θ(log n) cancel/duplicate phases, and reads the
//     surviving sign;
//   - the slow blackbox, running continuously in the background, whose
//     decided bits (P_D^1, P_D^0) veto the fast result: "P := on" only
//     while not every agent has decided 0, and "P := off" only while not
//     every agent has decided 1 — the paper's combination.
//
// The output variable P therefore converges w.h.p. within O(polylog n)
// framework rounds of leader convergence, and with certainty once the
// slow blackbox has stabilized. Modulo predicates have no fast box here
// (a documented substitution; see DESIGN.md): they converge through the
// slow path alone, still exactly.
type Exact struct {
	Pred Predicate

	Space *bitmask.Space
	Pop   *engine.Dense
	RNG   *engine.RNG
	// Rounds is accumulated parallel time under the framework cost model.
	Rounds float64
	// C is the loop constant.
	C int

	P    bitmask.Var // output
	L    bitmask.Var // leader flag
	R    bitmask.Var // coalescing fallback set
	slow *SlowBox
	fast *FastBox // nil for Mod predicates

	bg      *engine.Protocol // slow box + R coalescence
	cancelP *engine.Protocol
	dupP    *engine.Protocol
	logN    float64

	gHasPos, gHasNeg, gD0, gD1, gL, gP bitmask.Guard
}

// NewExact builds the protocol for the predicate over n agents whose
// colours are given by colour(i) ∈ {0…arity−1} or −1 for uncoloured.
func NewExact(pred Predicate, n int, colour func(i int) int, seed uint64) *Exact {
	sp := bitmask.NewSpace()
	e := &Exact{
		Pred:  pred,
		Space: sp,
		RNG:   engine.NewRNG(seed),
		C:     2,
		P:     sp.Bool("P"),
		L:     sp.Bool("L"),
		R:     sp.Bool("R"),
		logN:  math.Log(float64(n)),
	}
	e.slow = NewSlowBox(sp, "S", pred)
	if th, ok := pred.(Threshold); ok {
		e.fast = NewFastBox(sp, "F", th)
	}

	// Background: the slow blackbox composed with the R coalescence.
	coalesce := rules.NewRuleset(sp)
	coalesce.Add(bitmask.Is(e.R), bitmask.Is(e.R), bitmask.Is(e.R), bitmask.IsNot(e.R))
	e.bg = engine.CompileProtocol(rules.ComposeThreads(e.slow.Rules(), coalesce))
	if e.fast != nil {
		e.cancelP = engine.CompileProtocol(rules.ComposeThreads(e.fast.CancelRules(), e.slow.Rules(), coalesce))
		e.dupP = engine.CompileProtocol(rules.ComposeThreads(e.fast.DupRules(), e.slow.Rules(), coalesce))
		e.gHasPos = bitmask.Compile(e.fast.HasPos())
		e.gHasNeg = bitmask.Compile(e.fast.HasNeg())
	}
	e.gD0 = bitmask.Compile(bitmask.Is(e.slow.D0))
	e.gD1 = bitmask.Compile(bitmask.Is(e.slow.D1))
	e.gL = bitmask.Compile(bitmask.Is(e.L))
	e.gP = bitmask.Compile(bitmask.Is(e.P))

	e.Pop = engine.NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		s = e.L.Set(s, true)
		s = e.R.Set(s, true)
		s = e.P.Set(s, true)
		return e.slow.InitAgent(s, colour(i))
	})
	return e
}

// chargeLeaves accounts parallel time and runs the background protocol.
func (e *Exact) chargeLeaves(leaves float64) {
	dt := leaves * float64(e.C) * e.logN
	e.Rounds += dt
	r := engine.NewRunner(e.bg, e.Pop, e.RNG)
	r.RunRounds(dt)
}

// Leaders returns the current number of leader-flagged agents.
func (e *Exact) Leaders() int { return e.Pop.Count(e.gL) }

// Output returns the number of agents with the output P set.
func (e *Exact) Output() int { return e.Pop.Count(e.gP) }

// SlowDecided reports whether the slow blackbox has decided unanimously,
// and which way.
func (e *Exact) SlowDecided() (decided, value bool) {
	n := e.Pop.N()
	if e.Pop.Count(e.gD1) == n {
		return true, true
	}
	if e.Pop.Count(e.gD0) == n {
		return true, false
	}
	return false, false
}

// leaderIteration runs one §6.1-style halving pass on L.
func (e *Exact) leaderIteration() {
	e.chargeLeaves(4)
	if e.Pop.Count(e.gL) == 0 {
		// Repair from the fallback set (L := R).
		e.applyPerAgent(func(s bitmask.State) bitmask.State {
			return e.L.Set(s, e.R.Get(s))
		})
		return
	}
	// Per-agent coins; survivors keep L if any survived.
	survivors := 0
	coins := make([]bool, e.Pop.N())
	for i := range coins {
		if e.L.Get(e.Pop.Agent(i)) && e.RNG.Bool() {
			coins[i] = true
			survivors++
		}
	}
	if survivors > 0 {
		for i, c := range coins {
			s := e.Pop.Agent(i)
			e.Pop.SetAgent(i, e.L.Set(s, c))
		}
	}
}

func (e *Exact) applyPerAgent(fn func(bitmask.State) bitmask.State) {
	for i := 0; i < e.Pop.N(); i++ {
		e.Pop.SetAgent(i, fn(e.Pop.Agent(i)))
	}
}

// fastAttempt runs one full fast-blackbox pass and returns its verdict.
func (e *Exact) fastAttempt(colour func(i int) int) bool {
	// Reset tokens (two assignment leaves).
	e.chargeLeaves(2)
	for i := 0; i < e.Pop.N(); i++ {
		s := e.Pop.Agent(i)
		e.Pop.SetAgent(i, e.fast.TokenState(s, colour(i), e.L.Get(s)))
	}
	passes := int(math.Ceil(float64(e.C) * e.logN))
	for p := 0; p < passes; p++ {
		dt := float64(e.C) * e.logN
		e.Rounds += dt
		rc := engine.NewRunner(e.cancelP, e.Pop, e.RNG)
		rc.RunRounds(dt)
		// K := off (one assignment).
		e.chargeLeaves(1)
		kClear := bitmask.ClearVar(e.fast.K)
		e.Pop.ApplyAll(bitmask.TrueGuard(), kClear)
		e.Rounds += dt
		rd := engine.NewRunner(e.dupP, e.Pop, e.RNG)
		rd.RunRounds(dt)
	}
	return e.Pop.Count(e.gHasPos) > 0
}

// RunIteration executes one outer iteration: leader halving, a fast
// attempt (for thresholds), and the §6.3 veto-combined output update.
func (e *Exact) RunIteration(colour func(i int) int) {
	e.leaderIteration()

	var fastTrue bool
	if e.fast != nil {
		fastTrue = e.fastAttempt(colour)
	} else {
		// Modulo predicates: follow the slow blackbox's (eventual)
		// verdict; undecided populations leave P alone.
		decided, value := e.SlowDecided()
		if !decided {
			e.chargeLeaves(2)
			return
		}
		fastTrue = value
	}

	// The combination of §6.3: the slow thread's unanimous decisions veto
	// conflicting fast updates.
	e.chargeLeaves(4)
	n := e.Pop.N()
	if fastTrue {
		if e.Pop.Count(e.gD0) < n { // "if exists (¬P_D^0)"
			e.Pop.ApplyAll(bitmask.TrueGuard(), bitmask.SetVar(e.P))
		}
	} else {
		if e.Pop.Count(e.gD1) < n { // "if exists (¬P_D^1)"
			e.Pop.ApplyAll(bitmask.TrueGuard(), bitmask.ClearVar(e.P))
		}
	}
}

// RunUntilStable iterates until the output matches the oracle on every
// agent and the slow box has decided, or maxIters elapse. It returns the
// iterations used and whether stability was reached.
func (e *Exact) RunUntilStable(colour func(i int) int, counts []int64, maxIters int) (int, bool) {
	want := e.Pred.Eval(counts)
	for i := 0; i < maxIters; i++ {
		decided, value := e.SlowDecided()
		outOK := (e.Output() == e.Pop.N()) == want && (want || e.Output() == 0)
		if decided && value == want && outOK {
			return i, true
		}
		e.RunIteration(colour)
	}
	return maxIters, false
}
