package semilinear

import (
	"math"
	"testing"
	"testing/quick"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
)

func TestPredicateOracle(t *testing.T) {
	maj := MajorityPredicate()
	if !maj.Eval([]int64{5, 4}) || maj.Eval([]int64{4, 5}) || maj.Eval([]int64{4, 4}) {
		t.Error("majority oracle wrong")
	}
	th := Threshold{Coef: []int{2, -1}, C: 3}
	if !th.Eval([]int64{2, 1}) || th.Eval([]int64{1, 0}) {
		t.Error("threshold oracle wrong")
	}
	mod := Mod{Coef: []int{1}, M: 3, R: 1}
	if !mod.Eval([]int64{4}) || mod.Eval([]int64{3}) {
		t.Error("mod oracle wrong")
	}
	frac := AtLeastFraction(2, 1, 3) // x1 ≥ (1/3)(x1+x2)
	if !frac.Eval([]int64{10, 20}) || frac.Eval([]int64{9, 21}) {
		t.Error("fraction oracle wrong")
	}
}

func TestModNegativeCoefficients(t *testing.T) {
	mod := Mod{Coef: []int{-1}, M: 3, R: 2}
	// -4 mod 3 = 2.
	if !mod.Eval([]int64{4}) {
		t.Error("negative sum handled wrong")
	}
}

// runSlowBox runs just the slow blackbox on a counted population until
// silent or budget exhausted; returns the final per-agent outputs.
func runSlowBox(t *testing.T, pred Predicate, counts []int64, filler int64, seed uint64) (agree bool, value bool, rounds float64) {
	t.Helper()
	sp := bitmask.NewSpace()
	box := NewSlowBox(sp, "S", pred)
	table := map[bitmask.State]int64{}
	for c, k := range counts {
		if k > 0 {
			table[box.InitAgent(bitmask.State{}, c)] += k
		}
	}
	if filler > 0 {
		table[box.InitAgent(bitmask.State{}, -1)] += filler
	}
	pop := engine.NewCounted(table)
	p := engine.CompileProtocol(box.Rules())
	cr := engine.NewCountRunner(p, pop, engine.NewRNG(seed))

	gD1 := bitmask.Compile(bitmask.Is(box.D1))
	gD0 := bitmask.Compile(bitmask.Is(box.D0))
	n := int64(pop.N())
	countF := func(f bitmask.Formula) int64 { return pop.CountFormula(f) }
	r, _ := cr.RunUntil(func(c *engine.CountRunner) bool {
		if !box.Canonical(countF) {
			return false
		}
		return c.Pop.Count(gD1) == n || c.Pop.Count(gD0) == n
	}, 1e7)
	if pop.Count(gD1) == n {
		return true, true, r
	}
	if pop.Count(gD0) == n {
		return true, false, r
	}
	return false, false, r
}

func TestSlowBoxMajority(t *testing.T) {
	cases := []struct {
		a, b   int64
		filler int64
		want   bool
	}{
		{30, 20, 0, true},
		{20, 30, 0, false},
		{26, 25, 10, true},
		{25, 26, 10, false},
		{25, 25, 0, false}, // tie: x1−x2 ≥ 1 is false
	}
	for _, tc := range cases {
		agree, val, _ := runSlowBox(t, MajorityPredicate(), []int64{tc.a, tc.b}, tc.filler, 3)
		if !agree {
			t.Fatalf("a=%d b=%d: no unanimous decision", tc.a, tc.b)
		}
		if val != tc.want {
			t.Errorf("a=%d b=%d: decided %v, want %v", tc.a, tc.b, val, tc.want)
		}
	}
}

func TestSlowBoxThresholdWithCoefficients(t *testing.T) {
	// 2·x1 − x2 ≥ 3
	pred := Threshold{Coef: []int{2, -1}, C: 3}
	cases := []struct {
		x1, x2 int64
	}{
		{10, 16}, {10, 18}, {2, 1}, {1, 0}, {5, 7}, {0, 4},
	}
	for _, tc := range cases {
		agree, val, _ := runSlowBox(t, pred, []int64{tc.x1, tc.x2}, 5, 7)
		if !agree {
			t.Fatalf("x=(%d,%d): no unanimous decision", tc.x1, tc.x2)
		}
		if want := pred.Eval([]int64{tc.x1, tc.x2}); val != want {
			t.Errorf("x=(%d,%d): decided %v, want %v", tc.x1, tc.x2, val, want)
		}
	}
}

func TestSlowBoxMod(t *testing.T) {
	pred := Mod{Coef: []int{1}, M: 3, R: 1}
	for _, x := range []int64{1, 2, 3, 4, 6, 7, 30, 31} {
		agree, val, _ := runSlowBox(t, pred, []int64{x}, 40, 11)
		if !agree {
			t.Fatalf("x=%d: no unanimous decision", x)
		}
		if want := pred.Eval([]int64{x}); val != want {
			t.Errorf("x=%d: decided %v, want %v", x, val, want)
		}
	}
}

// TestSlowBoxQuick property-tests the slow box against the oracle on
// random small instances.
func TestSlowBoxQuick(t *testing.T) {
	pred := Threshold{Coef: []int{1, -1}, C: 0} // x1 ≥ x2
	cfg := &quick.Config{MaxCount: 12}
	seed := uint64(100)
	prop := func(a, b uint8) bool {
		x1 := int64(a%40) + 1
		x2 := int64(b%40) + 1
		seed++
		agree, val, _ := runSlowBox(t, pred, []int64{x1, x2}, 3, seed)
		return agree && val == (x1 >= x2)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestSlowBoxStability: after deciding, further interactions never change
// any agent's decided output (the stable-computation property).
func TestSlowBoxStability(t *testing.T) {
	sp := bitmask.NewSpace()
	box := NewSlowBox(sp, "S", MajorityPredicate())
	table := map[bitmask.State]int64{
		box.InitAgent(bitmask.State{}, 0):  30,
		box.InitAgent(bitmask.State{}, 1):  20,
		box.InitAgent(bitmask.State{}, -1): 10,
	}
	pop := engine.NewCounted(table)
	p := engine.CompileProtocol(box.Rules())
	cr := engine.NewCountRunner(p, pop, engine.NewRNG(5))
	gD1 := bitmask.Compile(bitmask.Is(box.D1))
	n := int64(pop.N())
	countF := func(f bitmask.Formula) int64 { return pop.CountFormula(f) }
	if _, ok := cr.RunUntil(func(c *engine.CountRunner) bool {
		return box.Canonical(countF) && c.Pop.Count(gD1) == n
	}, 1e7); !ok {
		t.Fatal("never decided")
	}
	// Keep running; the decision must not budge.
	cr.RunUntil(func(*engine.CountRunner) bool { return false }, 5000)
	if pop.Count(gD1) != n {
		t.Errorf("decision destabilized: %d/%d still decided true", pop.Count(gD1), n)
	}
}

func TestFastBoxTokenInvariant(t *testing.T) {
	// Cancellation preserves the signed difference exactly.
	sp := bitmask.NewSpace()
	pred := Threshold{Coef: []int{1, -1}, C: 1}
	box := NewFastBox(sp, "F", pred)
	pop := engine.NewDenseInit(100, func(i int) bitmask.State {
		colour := -1
		switch {
		case i < 40:
			colour = 0
		case i < 75:
			colour = 1
		}
		return box.TokenState(bitmask.State{}, colour, i == 0)
	})
	// Signed difference: 40 − 35 − (C−1=0) = 5.
	diff := func() int64 {
		var d int64
		pop.ForEach(func(_ int, s bitmask.State) {
			d += int64(box.Pos.Get(s)) - int64(box.Neg.Get(s))
		})
		return d
	}
	if diff() != 5 {
		t.Fatalf("initial diff = %d, want 5", diff())
	}
	p := engine.CompileProtocol(box.CancelRules())
	r := engine.NewRunner(p, pop, engine.NewRNG(1))
	r.RunRounds(200)
	if diff() != 5 {
		t.Errorf("cancellation broke the invariant: diff = %d", diff())
	}
	gNeg := bitmask.Compile(box.HasNeg())
	if pop.Count(gNeg) != 0 {
		t.Errorf("negative tokens survived cancellation: %d holders", pop.Count(gNeg))
	}
}

func TestExactMajorityThreshold(t *testing.T) {
	const n = 400
	for _, tc := range []struct {
		nA, nB int
	}{
		{120, 80}, {80, 120}, {101, 100}, {100, 101},
	} {
		colour := func(i int) int {
			switch {
			case i < tc.nA:
				return 0
			case i < tc.nA+tc.nB:
				return 1
			}
			return -1
		}
		counts := []int64{int64(tc.nA), int64(tc.nB)}
		e := NewExact(MajorityPredicate(), n, colour, 13)
		iters, ok := e.RunUntilStable(colour, counts, 600)
		if !ok {
			dec, val := e.SlowDecided()
			t.Fatalf("nA=%d nB=%d: not stable after %d iters (out=%d/%d leaders=%d slow=%v,%v)",
				tc.nA, tc.nB, iters, e.Output(), n, e.Leaders(), dec, val)
		}
		want := 0
		if tc.nA > tc.nB {
			want = n
		}
		// Keep iterating: the decided slow box must pin the output.
		e.RunIteration(colour)
		e.RunIteration(colour)
		if got := e.Output(); got != want {
			t.Errorf("nA=%d nB=%d: output %d, want %d after extra iterations", tc.nA, tc.nB, got, want)
		}
	}
}

func TestExactModPredicate(t *testing.T) {
	const n = 200
	pred := Mod{Coef: []int{1}, M: 3, R: 1}
	for _, nA := range []int{30, 31, 32} {
		colour := func(i int) int {
			if i < nA {
				return 0
			}
			return -1
		}
		e := NewExact(pred, n, colour, 19)
		iters, ok := e.RunUntilStable(colour, []int64{int64(nA)}, 4000)
		if !ok {
			t.Fatalf("nA=%d: not stable after %d iterations", nA, iters)
		}
		want := 0
		if pred.Eval([]int64{int64(nA)}) {
			want = n
		}
		if got := e.Output(); got != want {
			t.Errorf("nA=%d: output %d, want %d", nA, got, want)
		}
	}
}

// TestExactFastPath verifies the w.h.p. speed claim shape: with the slow
// box still undecided, the output is already correct within a handful of
// iterations once a unique leader exists.
func TestExactFastPath(t *testing.T) {
	const n = 2048
	colour := func(i int) int {
		switch {
		case i < 700:
			return 0
		case i < 1200:
			return 1
		}
		return -1
	}
	e := NewExact(MajorityPredicate(), n, colour, 23)
	budget := 4 * int(math.Log2(n))
	for i := 0; i < budget; i++ {
		e.RunIteration(colour)
		if e.Leaders() == 1 && e.Output() == n {
			decided, _ := e.SlowDecided()
			if decided {
				t.Skip("slow box decided before the fast path could be observed")
			}
			return // fast path delivered the answer before the slow box
		}
	}
	t.Errorf("fast path did not deliver within %d iterations: leaders=%d out=%d",
		budget, e.Leaders(), e.Output())
}

func TestSlowBoxRulesValidate(t *testing.T) {
	sp := bitmask.NewSpace()
	box := NewSlowBox(sp, "S", Threshold{Coef: []int{2, -1}, C: 3})
	if err := box.Rules().Validate(); err != nil {
		t.Errorf("threshold slow box: %v", err)
	}
	sp2 := bitmask.NewSpace()
	box2 := NewSlowBox(sp2, "S", Mod{Coef: []int{1, 2}, M: 5, R: 2})
	if err := box2.Rules().Validate(); err != nil {
		t.Errorf("mod slow box: %v", err)
	}
	sp3 := bitmask.NewSpace()
	fb := NewFastBox(sp3, "F", MajorityPredicate())
	if err := fb.CancelRules().Validate(); err != nil {
		t.Errorf("fast cancel: %v", err)
	}
	if err := fb.DupRules().Validate(); err != nil {
		t.Errorf("fast dup: %v", err)
	}
}
