package semilinear

import (
	"fmt"

	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// SlowBox is the always-correct stable computation of a threshold or
// modulo predicate in the style of [AAD+06] — the paper's "slow blackbox"
// (§6.3). Every agent starts as a marker carrying its own coefficient
// contribution; markers merge pairwise, preserving the (capped) running
// sum exactly; eventually the markers stabilize into a canonical
// configuration whose outputs all agree with the predicate, and the value
// epidemically reaches every non-marker. Convergence takes Θ(n) parallel
// time (marker coalescence), and once reached the output never changes —
// stable computation in the [DS15] sense.
//
// State per agent: marker bit M, value field V (offset-encoded for
// thresholds, residue for mod), decided-output bits D1 ("predicate true")
// and D0 ("predicate false") — the P_D^1 / P_D^0 pair of §6.3, at most one
// of which is set once the agent has heard from a marker.
type SlowBox struct {
	Pred Predicate

	M  bitmask.Var
	V  bitmask.Field
	D0 bitmask.Var
	D1 bitmask.Var

	cap int // threshold saturation bound s (0 for mod)
	mod int // modulus (0 for threshold)
	rs  *rules.Ruleset
}

// NewSlowBox builds the slow blackbox for the predicate over the space.
// Threshold coefficients and the constant must satisfy |a_i|, |c| ≤ 15
// (the value field is kept narrow; all the paper's examples qualify).
func NewSlowBox(sp *bitmask.Space, prefix string, pred Predicate) *SlowBox {
	b := &SlowBox{
		Pred: pred,
		M:    sp.Bool(prefix + "M"),
		D0:   sp.Bool(prefix + "D0"),
		D1:   sp.Bool(prefix + "D1"),
	}
	switch p := pred.(type) {
	case Threshold:
		s := abs(p.C) + 1
		for _, a := range p.Coef {
			if abs(a) > s {
				s = abs(a)
			}
		}
		if s > 15 {
			panic("semilinear: threshold constants too large for the slow box")
		}
		b.cap = s
		b.V = sp.Field(prefix+"V", uint64(2*s)) // offset encoding: v+s
		b.rs = b.buildThresholdRules(sp)
	case Mod:
		if p.M < 2 || p.M > 31 {
			panic("semilinear: modulus out of range")
		}
		b.mod = p.M
		b.V = sp.Field(prefix+"V", uint64(p.M-1))
		b.rs = b.buildModRules(sp)
	default:
		panic(fmt.Sprintf("semilinear: unsupported predicate %T", pred))
	}
	return b
}

// outBits returns the update setting the decided-output pair to the value.
func (b *SlowBox) outBits(val bool) bitmask.Formula {
	if val {
		return bitmask.And(bitmask.Is(b.D1), bitmask.IsNot(b.D0))
	}
	return bitmask.And(bitmask.Is(b.D0), bitmask.IsNot(b.D1))
}

func (b *SlowBox) thresholdOut(v int) bool {
	p := b.Pred.(Threshold)
	return v >= p.C
}

// buildThresholdRules emits the capped-merge rules. For marker values u
// (initiator) and v (responder), the merged pair is (clamp(u+v), rest);
// the responder keeps its marker only if rest ≠ 0. Both agents set their
// decided bits from the exact pair sum u+v: in the final stable
// configuration every marker's last merge involved the saturated majority
// sign (or the exact total, in the single-marker case), so all outputs
// agree with the predicate. Only both-saturated-same-sign pairs are
// genuinely inert and get no rule.
func (b *SlowBox) buildThresholdRules(sp *bitmask.Space) *rules.Ruleset {
	s := b.cap
	p := b.Pred.(Threshold)
	rs := rules.NewRuleset(sp)
	var merge []rules.Rule
	for u := -s; u <= s; u++ {
		for v := -s; v <= s; v++ {
			if (u == s && v == s) || (u == -s && v == -s) {
				continue // inert: both saturated the same way
			}
			sum := u + v
			merged := clamp(sum, -s, s)
			rest := sum - merged
			out := b.outBits(sum >= p.C)
			left := bitmask.And(bitmask.FieldIs(b.V, uint64(merged+s)), out)
			var right bitmask.Formula
			if rest == 0 {
				right = bitmask.And(bitmask.IsNot(b.M), bitmask.FieldIs(b.V, uint64(0+s)), out)
			} else {
				right = bitmask.And(bitmask.FieldIs(b.V, uint64(rest+s)), out)
			}
			merge = append(merge, rules.MustNew(
				bitmask.And(bitmask.Is(b.M), bitmask.FieldIs(b.V, uint64(u+s))),
				bitmask.And(bitmask.Is(b.M), bitmask.FieldIs(b.V, uint64(v+s))),
				left, right))
		}
	}
	rs.AddGroup("slowmerge", 1, merge...)
	rs.AddGroup("slowcast", 1, b.broadcastRules()...)
	return rs
}

// buildModRules emits the residue-merge rules: markers combine mod M into
// the initiator; the responder demotes to a non-marker echoing the output.
func (b *SlowBox) buildModRules(sp *bitmask.Space) *rules.Ruleset {
	m := b.mod
	p := b.Pred.(Mod)
	r := ((p.R % m) + m) % m
	rs := rules.NewRuleset(sp)
	var merge []rules.Rule
	for u := 0; u < m; u++ {
		for v := 0; v < m; v++ {
			sum := (u + v) % m
			out := sum == r
			merge = append(merge, rules.MustNew(
				bitmask.And(bitmask.Is(b.M), bitmask.FieldIs(b.V, uint64(u))),
				bitmask.And(bitmask.Is(b.M), bitmask.FieldIs(b.V, uint64(v))),
				bitmask.And(bitmask.FieldIs(b.V, uint64(sum)), b.outBits(out)),
				bitmask.And(bitmask.IsNot(b.M), bitmask.FieldIs(b.V, 0), b.outBits(out))))
		}
	}
	rs.AddGroup("slowmerge", 1, merge...)
	rs.AddGroup("slowcast", 1, b.broadcastRules()...)
	return rs
}

// broadcastRules let markers overwrite the decided bits of disagreeing or
// undecided non-markers.
func (b *SlowBox) broadcastRules() []rules.Rule {
	var out []rules.Rule
	for _, val := range []bool{false, true} {
		src := bitmask.And(bitmask.Is(b.M), b.outBits(val))
		dst := bitmask.And(bitmask.IsNot(b.M), bitmask.Not(b.outBits(val)))
		out = append(out, rules.MustNew(src, dst, bitmask.True(), b.outBits(val)))
	}
	return out
}

// Rules returns the slow box's ruleset.
func (b *SlowBox) Rules() *rules.Ruleset { return b.rs }

// InitAgent initializes an agent of the given input colour (-1 for an
// uncoloured agent, which starts as a zero-valued marker).
func (b *SlowBox) InitAgent(s bitmask.State, colour int) bitmask.State {
	s = b.M.Set(s, true)
	val := 0
	if colour >= 0 {
		switch p := b.Pred.(type) {
		case Threshold:
			val = p.Coef[colour]
		case Mod:
			val = ((p.Coef[colour] % p.M) + p.M) % p.M
		}
	}
	if b.mod > 0 {
		s = b.V.Set(s, uint64(val))
		return b.setOut(s, val == ((b.Pred.(Mod).R%b.mod)+b.mod)%b.mod)
	}
	s = b.V.Set(s, uint64(val+b.cap))
	return b.setOut(s, b.thresholdOut(val))
}

func (b *SlowBox) setOut(s bitmask.State, val bool) bitmask.State {
	s = b.D1.Set(s, val)
	return b.D0.Set(s, !val)
}

// Output reads an agent's decided output.
func (b *SlowBox) Output(s bitmask.State) bool { return b.D1.Get(s) }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Canonical reports whether the marker multiset has reached its final
// form, given a counting oracle over state formulas. For thresholds:
// markers carry at most one sign, at most one is strictly between zero and
// saturation, and a zero marker exists only as the unique marker (the
// T = 0 configuration). For mod predicates: a single marker remains.
// Together with unanimous decided bits this certifies convergence; it is a
// whole-population test used by experiments, not by agents (the paper
// notes convergence is not locally detectable).
func (b *SlowBox) Canonical(count func(f bitmask.Formula) int64) bool {
	m := bitmask.Is(b.M)
	if b.mod > 0 {
		return count(m) == 1
	}
	s := b.cap
	var pos, neg, partial, zero int64
	for v := -s; v <= s; v++ {
		c := count(bitmask.And(m, bitmask.FieldIs(b.V, uint64(v+s))))
		switch {
		case v > 0:
			pos += c
			if v < s {
				partial += c
			}
		case v < 0:
			neg += c
			if v > -s {
				partial += c
			}
		default:
			zero += c
		}
	}
	if pos > 0 && neg > 0 {
		return false
	}
	if partial > 1 {
		return false
	}
	if zero > 0 && (zero > 1 || pos+neg > 0) {
		return false
	}
	return true
}
