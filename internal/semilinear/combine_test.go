package semilinear

import (
	"testing"

	"popkit/internal/bitmask"
	"popkit/internal/engine"
)

func TestCombinatorOracles(t *testing.T) {
	inRange := AndPred{Parts: []Predicate{
		Threshold{Coef: []int{1}, C: 5},                  // x ≥ 5
		NotPred{Inner: Threshold{Coef: []int{1}, C: 11}}, // x < 11
	}}
	for x, want := range map[int64]bool{4: false, 5: true, 10: true, 11: false} {
		if got := inRange.Eval([]int64{x}); got != want {
			t.Errorf("inRange(%d) = %v", x, got)
		}
	}
	either := OrPred{Parts: []Predicate{
		Mod{Coef: []int{1}, M: 2, R: 0},   // even
		Threshold{Coef: []int{1}, C: 100}, // or huge
	}}
	if !either.Eval([]int64{4}) || either.Eval([]int64{5}) || !either.Eval([]int64{101}) {
		t.Error("either oracle wrong")
	}
	if inRange.Arity() != 1 || either.Name() == "" {
		t.Error("metadata wrong")
	}
}

// runCombo stably computes a combined predicate on the counted engine.
func runCombo(t *testing.T, pred Predicate, counts []int64, filler int64, seed uint64) (bool, bool) {
	t.Helper()
	sp := bitmask.NewSpace()
	box, err := NewComboSlowBox(sp, "C", pred)
	if err != nil {
		t.Fatal(err)
	}
	if err := box.Rules().Validate(); err != nil {
		t.Fatal(err)
	}
	table := map[bitmask.State]int64{}
	for c, k := range counts {
		if k > 0 {
			table[box.InitAgent(bitmask.State{}, c)] += k
		}
	}
	if filler > 0 {
		table[box.InitAgent(bitmask.State{}, -1)] += filler
	}
	pop := engine.NewCounted(table)
	cr := engine.NewCountRunner(engine.CompileProtocol(box.Rules()), pop, engine.NewRNG(seed))
	gD1 := bitmask.Compile(bitmask.Is(box.D1))
	gD0 := bitmask.Compile(bitmask.Is(box.D0))
	n := int64(pop.N())
	countF := func(f bitmask.Formula) int64 { return pop.CountFormula(f) }
	_, ok := cr.RunUntil(func(c *engine.CountRunner) bool {
		if !box.Canonical(countF) {
			return false
		}
		return c.Pop.Count(gD1) == n || c.Pop.Count(gD0) == n
	}, 1e7)
	if !ok {
		t.Fatal("combo never decided")
	}
	return pop.Count(gD1) == n, pop.Count(gD0) == n
}

// TestComboRangePredicate stably computes 5 ≤ x < 11 — a conjunction of a
// threshold and a negated threshold, i.e. a genuine semi-linear predicate
// beyond single atoms.
func TestComboRangePredicate(t *testing.T) {
	pred := AndPred{Parts: []Predicate{
		Threshold{Coef: []int{1}, C: 5},
		NotPred{Inner: Threshold{Coef: []int{1}, C: 11}},
	}}
	for _, tc := range []struct {
		x    int64
		want bool
	}{
		{4, false}, {5, true}, {10, true}, {11, false},
	} {
		d1, d0 := runCombo(t, pred, []int64{tc.x}, 60, 5)
		if d1 == d0 {
			t.Fatalf("x=%d: inconsistent decision d1=%v d0=%v", tc.x, d1, d0)
		}
		if d1 != tc.want {
			t.Errorf("x=%d: decided %v, want %v", tc.x, d1, tc.want)
		}
	}
}

// TestComboParityOrMajority combines a mod atom with a threshold atom
// across two colours: "x1 is even, or x1 > x2".
func TestComboParityOrMajority(t *testing.T) {
	pred := OrPred{Parts: []Predicate{
		Mod{Coef: []int{1, 0}, M: 2, R: 0},
		Threshold{Coef: []int{1, -1}, C: 1},
	}}
	for _, tc := range []struct {
		x1, x2 int64
	}{
		{8, 20}, {9, 20}, {21, 20}, {7, 8},
	} {
		d1, _ := runCombo(t, pred, []int64{tc.x1, tc.x2}, 30, 9)
		if want := pred.Eval([]int64{tc.x1, tc.x2}); d1 != want {
			t.Errorf("x=(%d,%d): decided %v, want %v", tc.x1, tc.x2, d1, want)
		}
	}
}

func TestComboRejectsUnknownPredicate(t *testing.T) {
	sp := bitmask.NewSpace()
	if _, err := NewComboSlowBox(sp, "C", fakePred{}); err == nil {
		t.Error("unknown predicate accepted")
	}
}

type fakePred struct{}

func (fakePred) Eval([]int64) bool { return false }
func (fakePred) Arity() int        { return 1 }
func (fakePred) Name() string      { return "fake" }
