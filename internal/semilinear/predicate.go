// Package semilinear implements the machinery behind Theorem 6.4: semi-
// linear predicates over input counts, the always-correct "slow blackbox"
// (stable computation in the style of [AAD+06]), the leader-driven "fast
// blackbox" for threshold predicates (in the spirit of [AAE08b]), and the
// SemilinearPredicateExact combination of §6.3 that runs both and lets the
// slow thread veto the fast one.
package semilinear

import (
	"fmt"
	"strings"
)

// A Predicate is a boolean function of the input colour counts
// (x_1, …, x_k). The paper's computable class is the semi-linear
// predicates: boolean combinations of threshold and modulo predicates.
type Predicate interface {
	// Eval computes the predicate on exact counts (the test oracle).
	Eval(counts []int64) bool
	// Arity returns the number of input colours.
	Arity() int
	// Name renders the predicate.
	Name() string
}

// Threshold is the predicate Σ Coef[i]·x_i ≥ C.
type Threshold struct {
	Coef []int
	C    int
}

// Eval implements Predicate.
func (t Threshold) Eval(counts []int64) bool {
	var sum int64
	for i, a := range t.Coef {
		sum += int64(a) * counts[i]
	}
	return sum >= int64(t.C)
}

// Arity implements Predicate.
func (t Threshold) Arity() int { return len(t.Coef) }

// Name implements Predicate.
func (t Threshold) Name() string {
	return fmt.Sprintf("%s >= %d", renderSum(t.Coef), t.C)
}

// Mod is the predicate Σ Coef[i]·x_i ≡ R (mod M).
type Mod struct {
	Coef []int
	M, R int
}

// Eval implements Predicate.
func (m Mod) Eval(counts []int64) bool {
	var sum int64
	for i, a := range m.Coef {
		sum += int64(a) * counts[i]
	}
	r := sum % int64(m.M)
	if r < 0 {
		r += int64(m.M)
	}
	return r == int64(m.R%m.M)
}

// Arity implements Predicate.
func (m Mod) Arity() int { return len(m.Coef) }

// Name implements Predicate.
func (m Mod) Name() string {
	return fmt.Sprintf("%s ≡ %d (mod %d)", renderSum(m.Coef), m.R, m.M)
}

func renderSum(coef []int) string {
	var b strings.Builder
	for i, a := range coef {
		if a == 0 {
			continue
		}
		if b.Len() > 0 && a > 0 {
			b.WriteByte('+')
		}
		switch a {
		case 1:
			fmt.Fprintf(&b, "x%d", i+1)
		case -1:
			fmt.Fprintf(&b, "-x%d", i+1)
		default:
			fmt.Fprintf(&b, "%d·x%d", a, i+1)
		}
	}
	if b.Len() == 0 {
		return "0"
	}
	return b.String()
}

// MajorityPredicate is the comparison predicate x_1 − x_2 ≥ 1 ("A wins").
func MajorityPredicate() Threshold {
	return Threshold{Coef: []int{1, -1}, C: 1}
}

// AtLeastFraction builds the threshold "x_1 ≥ (p/q)·(x_1+…+x_k)" as
// q·x_1 − p·Σx_i ≥ 0, a representative population-fraction predicate.
func AtLeastFraction(k, p, q int) Threshold {
	coef := make([]int, k)
	for i := range coef {
		coef[i] = -p
	}
	coef[0] += q
	return Threshold{Coef: coef, C: 0}
}
