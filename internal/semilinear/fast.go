package semilinear

import (
	"popkit/internal/bitmask"
	"popkit/internal/rules"
)

// FastBox is the leader-driven w.h.p. computation of a threshold predicate
// Σ a_i·x_i ≥ c — the paper's "fast blackbox" (§6.3), realized in the
// spirit of [AAE08b]: the threshold is reduced to a signed-token majority
// contest. Every agent holds |a_colour| tokens of sign(a_colour); the
// leader additionally absorbs the constant as c negative tokens (the one
// place the unique leader is needed). Cancellation annihilates opposite
// tokens one per meeting, preserving Σ(positive − negative) = Σa_i·x_i − c
// exactly; duplication doubles every agent's holding once per phase. After
// Θ(log n) cancel/duplicate phases only the winning sign survives, w.h.p.,
// so "does any positive token exist" reads off the predicate.
type FastBox struct {
	Pred Threshold
	Pos  bitmask.Field // positive tokens held
	Neg  bitmask.Field // negative tokens held
	K    bitmask.Var   // one-duplication-per-phase flag

	maxTok int
	cancel *rules.Ruleset
	dup    *rules.Ruleset
}

// NewFastBox builds the fast blackbox over the space. Coefficients and
// constant must satisfy max(|a_i|) + |c| ≤ 15.
func NewFastBox(sp *bitmask.Space, prefix string, pred Threshold) *FastBox {
	maxTok := 0
	for _, a := range pred.Coef {
		if abs(a) > maxTok {
			maxTok = abs(a)
		}
	}
	maxTok += abs(pred.C-1) + 1 // leader may combine its coefficient and the offset
	if maxTok > 15 {
		panic("semilinear: threshold constants too large for the fast box")
	}
	if maxTok == 0 {
		maxTok = 1
	}
	f := &FastBox{
		Pred:   pred,
		Pos:    sp.Field(prefix+"P", uint64(maxTok)),
		Neg:    sp.Field(prefix+"N", uint64(maxTok)),
		K:      sp.Bool(prefix + "K"),
		maxTok: maxTok,
	}

	// Cancellation: a positive-holder meets a negative-holder; one token
	// each annihilates.
	f.cancel = rules.NewRuleset(sp)
	var cancel []rules.Rule
	for p := 1; p <= maxTok; p++ {
		for q := 1; q <= maxTok; q++ {
			cancel = append(cancel, rules.MustNew(
				bitmask.FieldIs(f.Pos, uint64(p)),
				bitmask.FieldIs(f.Neg, uint64(q)),
				bitmask.FieldIs(f.Pos, uint64(p-1)),
				bitmask.FieldIs(f.Neg, uint64(q-1))))
		}
	}
	f.cancel.AddGroup(prefix+"cancel", 1, cancel...)

	// Duplication: an unduplicated holder clones its full holding onto a
	// blank agent; both become flagged.
	blank := bitmask.And(
		bitmask.FieldIs(f.Pos, 0), bitmask.FieldIs(f.Neg, 0), bitmask.IsNot(f.K))
	f.dup = rules.NewRuleset(sp)
	var dup []rules.Rule
	for p := 1; p <= maxTok; p++ {
		dup = append(dup, rules.MustNew(
			bitmask.And(bitmask.FieldIs(f.Pos, uint64(p)), bitmask.FieldIs(f.Neg, 0), bitmask.IsNot(f.K)),
			blank,
			bitmask.And(bitmask.FieldIs(f.Pos, uint64(p)), bitmask.Is(f.K)),
			bitmask.And(bitmask.FieldIs(f.Pos, uint64(p)), bitmask.Is(f.K))))
		dup = append(dup, rules.MustNew(
			bitmask.And(bitmask.FieldIs(f.Neg, uint64(p)), bitmask.FieldIs(f.Pos, 0), bitmask.IsNot(f.K)),
			blank,
			bitmask.And(bitmask.FieldIs(f.Neg, uint64(p)), bitmask.Is(f.K)),
			bitmask.And(bitmask.FieldIs(f.Neg, uint64(p)), bitmask.Is(f.K))))
	}
	f.dup.AddGroup(prefix+"dup", 1, dup...)
	return f
}

// CancelRules returns the cancellation leaf ruleset.
func (f *FastBox) CancelRules() *rules.Ruleset { return f.cancel }

// DupRules returns the duplication leaf ruleset.
func (f *FastBox) DupRules() *rules.Ruleset { return f.dup }

// TokenState writes an agent's token holding for a fresh attempt: its
// colour's coefficient, plus the offset −(c−1) if it is a leader — so the
// signed token difference is Σa_i·x_i − c + 1, and "some positive token
// survives" is exactly the predicate Σa_i·x_i ≥ c, including the tight
// case Σa_i·x_i = c. Opposite tokens self-cancel immediately. colour may
// be −1 for uncoloured agents.
func (f *FastBox) TokenState(s bitmask.State, colour int, isLeader bool) bitmask.State {
	net := 0
	if colour >= 0 {
		net = f.Pred.Coef[colour]
	}
	if isLeader {
		net -= f.Pred.C - 1
	}
	s = f.K.Set(s, false)
	if net >= 0 {
		s = f.Pos.Set(s, uint64(net))
		return f.Neg.Set(s, 0)
	}
	s = f.Pos.Set(s, 0)
	return f.Neg.Set(s, uint64(-net))
}

// HasPos is the formula "agent holds at least one positive token".
func (f *FastBox) HasPos() bitmask.Formula {
	return bitmask.Not(bitmask.FieldIs(f.Pos, 0))
}

// HasNeg is the formula "agent holds at least one negative token".
func (f *FastBox) HasNeg() bitmask.Formula {
	return bitmask.Not(bitmask.FieldIs(f.Neg, 0))
}
