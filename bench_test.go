package popkit

import (
	"testing"

	"popkit/internal/expt"
)

// The repository's benchmark suite regenerates each experiment of
// EXPERIMENTS.md (one benchmark per table/figure) in its Quick
// configuration, reporting the total parallel rounds simulated where the
// experiment exposes them. Run the full-size versions with cmd/popbench.

func benchExperiment(b *testing.B, id string) {
	e, ok := expt.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := expt.Config{Seeds: 2, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.BaseSeed = uint64(i)
		res := e.Run(cfg)
		if len(res.Tables) == 0 || res.Tables[0].NumRows() == 0 {
			b.Fatalf("%s produced no data", id)
		}
	}
}

func BenchmarkE1LeaderElection(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2Majority(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3Oscillator(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE4PhaseClock(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE6TwoMeet(b *testing.B)        { benchExperiment(b, "E6") }
func BenchmarkE7Cascade(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8Exact(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9Semilinear(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10Plurality(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11Baselines(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12Tradeoff(b *testing.B)      { benchExperiment(b, "E12") }

func BenchmarkE13CompiledEndToEnd(b *testing.B) {
	if testing.Short() {
		b.Skip("compiled end-to-end bench is long")
	}
	benchExperiment(b, "E13")
}
func BenchmarkF1OscTrajectory(b *testing.B) { benchExperiment(b, "F1") }
func BenchmarkF2XDecay(b *testing.B)        { benchExperiment(b, "F2") }

// BenchmarkE5Hierarchy and BenchmarkF3HierarchyTrace drive the two-level
// clock hierarchy — by far the most expensive constructions (one level-2
// tick costs ≈ 4·α·ln n level-1 ticks). They are guarded behind -short so
// `go test -bench=. -benchmem` stays tractable on a laptop; cmd/popbench
// runs them at full size.
func BenchmarkE5Hierarchy(b *testing.B) {
	if testing.Short() {
		b.Skip("hierarchy bench is long")
	}
	benchExperiment(b, "E5")
}

func BenchmarkF3HierarchyTrace(b *testing.B) {
	if testing.Short() {
		b.Skip("hierarchy bench is long")
	}
	benchExperiment(b, "F3")
}

// Micro-benchmarks of the simulation substrate itself.

func BenchmarkEngineSequentialStep(b *testing.B) {
	c, err := CompileProgram(MustParseProgram(`
protocol Bench
var I = off

thread Main uses I
  repeat:
    execute for >= 1 ln n rounds ruleset:
      (I) + (!I) -> (I) + (I)
`), CompileOptions{Control: XPreReduced})
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(c.Rules)
	rng := NewRNG(1)
	pop := c.NewPopulation(4096, rng)
	r := NewScheduler(eng, pop, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}

func BenchmarkFrameworkIteration(b *testing.B) {
	run, err := NewRun(Majority(2), 1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run.RunIteration()
	}
}
