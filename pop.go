// Package popkit is a library for building, simulating, and measuring
// population protocols, reproducing "Population Protocols Are Fast"
// (Kosowski & Uznański, PODC 2018). It provides:
//
//   - the paper's imperative programming framework: parse or build
//     sequential programs (threads, repeat loops, "execute ruleset"
//     leaves, "if exists" branching, assignments) and run them under the
//     framework's good-iteration semantics (Theorem 2.4);
//   - a real compiler (§4, §5.4) lowering programs to flat population-
//     protocol rule sets gated by a self-organizing hierarchy of phase
//     clocks (§5), executable under the plain uniform-random scheduler;
//   - the paper's protocols — LeaderElection, Majority, their always-
//     correct variants, plurality consensus, and semi-linear predicate
//     computation — plus the prior-work baselines they are compared to;
//   - simulation engines (per-agent and species-count based, with
//     geometric leaping over quiescent stretches) and the experiment
//     harness regenerating every quantitative claim (EXPERIMENTS.md).
//
// Quick start:
//
//	prog := popkit.LeaderElection()
//	run, _ := popkit.NewRun(prog, 4096, 1)
//	iters, _ := run.RunUntil(func(r *popkit.Run) bool {
//	    return r.CountVar("L") == 1
//	}, 200)
//	fmt.Printf("unique leader after %d iterations (%.0f rounds)\n",
//	    iters, run.Rounds())
package popkit

import (
	"popkit/internal/bitmask"
	"popkit/internal/compile"
	"popkit/internal/engine"
	"popkit/internal/expt"
	"popkit/internal/frame"
	"popkit/internal/lang"
	"popkit/internal/osc"
	"popkit/internal/protocols"
	"popkit/internal/semilinear"
)

// Program is a protocol written in the paper's imperative language.
type Program = lang.Program

// ParseProgram parses a program in the indentation-based syntax of the
// paper's pseudocode (see internal/lang for the grammar).
func ParseProgram(src string) (*Program, error) { return lang.Parse(src) }

// MustParseProgram is ParseProgram for statically-known sources.
func MustParseProgram(src string) *Program { return lang.MustParse(src) }

// The paper's example protocols.
var (
	// LeaderElection is the w.h.p. protocol of §3.1 (output variable L).
	LeaderElection = protocols.LeaderElection
	// LeaderElectionExact is the always-correct variant of §6.1.
	LeaderElectionExact = protocols.LeaderElectionExact
)

// Majority returns the §3.2 w.h.p. majority program with loop constant c
// (inputs A, B; output YA).
func Majority(c int) *Program { return protocols.Majority(c) }

// MajorityExact returns the always-correct §6.2 variant.
func MajorityExact(c int) *Program { return protocols.MajorityExact(c) }

// Plurality returns the l-colour plurality-consensus program (§1.1).
func Plurality(l, c int) *Program { return protocols.Plurality(l, c) }

// Run executes a program under the framework's good-iteration semantics
// (Theorem 2.4): each leaf runs ≥ c·ln n rounds of a fair scheduler, and
// parallel time is charged accordingly. It is the fastest way to measure
// the paper's convergence bounds; use Compile for the real flat protocol.
type Run = frame.Executor

// Faults configures adversarial executions (stops, partial assignments).
type Faults = frame.Faults

// NewRun builds a framework run of the program over n agents.
func NewRun(p *Program, n int, seed uint64) (*Run, error) {
	return frame.New(p, n, seed)
}

// Compiled is a program lowered to a flat population protocol: the clock
// hierarchy, the X-control process, and the Π_τ-gated program rules.
type Compiled = compile.Compiled

// CompileOptions configure compilation.
type CompileOptions = compile.Options

// X-control choices for CompileOptions.Control.
const (
	XTwoMeet    = compile.XTwoMeet
	XCascade    = compile.XCascade
	XPreReduced = compile.XPreReduced
)

// CompileProgram lowers a program to a flat rule set (§4, §5.4).
func CompileProgram(p *Program, opt CompileOptions) (*Compiled, error) {
	return compile.Compile(p, opt)
}

// NewEngine compiles a raw ruleset for simulation under the uniform-random
// pairwise scheduler. Most users want NewRun or CompileProgram instead;
// this entry point serves custom rule sets built with the internal
// packages' types exposed through Compiled.Rules.
var NewEngine = engine.CompileProtocol

// RNG is the deterministic generator used across all simulations.
type RNG = engine.RNG

// NewRNG seeds a generator; identical seeds reproduce identical runs.
var NewRNG = engine.NewRNG

// Scheduler drives a compiled rule set over a per-agent population under
// the asynchronous uniform-random pairwise scheduler (engine.Runner).
type Scheduler = engine.Runner

// NewScheduler assembles a scheduler for a compiled protocol.
var NewScheduler = engine.NewRunner

// Predicate combinators for semi-linear predicate computation (§6.3).
type (
	// Predicate is a boolean function of input colour counts.
	Predicate = semilinear.Predicate
	// Threshold is Σ Coef[i]·x_i ≥ C.
	Threshold = semilinear.Threshold
	// Mod is Σ Coef[i]·x_i ≡ R (mod M).
	Mod = semilinear.Mod
	// SemilinearExact is the always-correct, fast-w.h.p. computation.
	SemilinearExact = semilinear.Exact
)

// NewSemilinearExact builds the §6.3 protocol for the predicate over n
// agents with the given colouring (colour(i) ∈ {0…arity−1}, or −1).
func NewSemilinearExact(pred Predicate, n int, colour func(i int) int, seed uint64) *SemilinearExact {
	return semilinear.NewExact(pred, n, colour, seed)
}

// Experiment is one entry of the reproduction suite (see EXPERIMENTS.md).
type Experiment = expt.Experiment

// ExperimentConfig scales the reproduction experiments.
type ExperimentConfig = expt.Config

// Experiments returns the registered reproduction experiments E1–E12 and
// figure generators F1–F3.
func Experiments() []Experiment { return expt.All() }

// LookupExperiment finds an experiment by ID (e.g. "E3").
func LookupExperiment(id string) (Experiment, bool) { return expt.Lookup(id) }

// OscSim is a ready-to-run simulation of the paper's rock–paper–scissors
// oscillator (§5.2) — the self-organizing chemistry underlying the phase
// clocks, directly interpretable as a fixed-volume chemical reaction
// network. Drive it with Sim.RunRounds and observe species counts.
type OscSim struct {
	// Osc gives access to species counts and dominance queries.
	Osc *osc.Oscillator
	// Sim is the underlying scheduler.
	Sim *Scheduler
	// Probe records dominance events for period measurements.
	Probe *osc.Probe
}

// NewOscillatorSim builds an oscillator over n agents with nx control
// (source) agents; the Theorem 5.1 regime is 1 ≤ nx ≤ n^(1−ε).
func NewOscillatorSim(n, nx int, seed uint64) *OscSim {
	sp := bitmask.NewSpace()
	x := sp.Bool("X")
	o := osc.New(sp, "O", x, osc.DefaultParams())
	proto := engine.CompileProtocol(o.Ruleset())
	rng := engine.NewRNG(seed)
	pop := engine.NewDenseInit(n, func(i int) bitmask.State {
		var s bitmask.State
		if i < nx {
			s = x.Set(s, true)
		}
		return o.InitState(s, uint64(rng.Intn(3)), false)
	})
	return &OscSim{Osc: o, Sim: engine.NewRunner(proto, pop, rng), Probe: osc.NewProbe(o)}
}

// Step advances the simulation by the given number of parallel rounds and
// feeds the probe once.
func (s *OscSim) Step(rounds float64) {
	s.Sim.RunRounds(rounds)
	s.Probe.Observe(s.Sim)
}

// Species returns the current species counts [A0, A1, A2].
func (s *OscSim) Species() [3]int { return s.Osc.SpeciesCounts(s.Sim.Pop) }

// Boolean combinators over predicates (the semi-linear class is the
// boolean closure of thresholds and mods).
type (
	// AndPredicate is the conjunction of predicates.
	AndPredicate = semilinear.AndPred
	// OrPredicate is the disjunction of predicates.
	OrPredicate = semilinear.OrPred
	// NotPredicate is the negation of a predicate.
	NotPredicate = semilinear.NotPred
)

// Population snapshot I/O: checkpoint long simulations and archive
// configurations (see internal/engine's snapshot format).
var (
	// ReadDensePopulation restores a per-agent population snapshot.
	ReadDensePopulation = engine.ReadDense
	// ReadCountedPopulation restores a species-table snapshot.
	ReadCountedPopulation = engine.ReadCounted
)
