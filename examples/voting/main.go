// Voting: plurality consensus in an anonymous sensor network. A swarm of
// 1,500 sensors each observed one of four events; the swarm must agree on
// the most frequent observation using only random pairwise radio contacts
// and constant memory per sensor (O(l²) states for l colours, §1.1).
//
//	go run ./examples/voting
package main

import (
	"fmt"
	"log"

	popkit "popkit"
	"popkit/internal/bitmask"
)

func main() {
	const (
		n       = 1500
		colours = 4
	)
	// Observed tallies — colour 2 wins by a 2% margin over colour 1.
	tallies := []int{395, 410, 380, 315}

	prog := popkit.Plurality(colours, 2)
	run, err := popkit.NewRun(prog, n, 99)
	if err != nil {
		log.Fatal(err)
	}

	vars := make([]bitmask.Var, colours)
	for i := range vars {
		vars[i], _ = run.Space.LookupVar(fmt.Sprintf("C%d", i+1))
	}
	run.SetInput(func(i int, s bitmask.State) bitmask.State {
		acc := 0
		for c := 0; c < colours; c++ {
			acc += tallies[c]
			if i < acc {
				return vars[c].Set(s, true)
			}
		}
		return s
	})

	fmt.Printf("sensors: %d, observations: %v (plurality: event 2 with %d)\n\n",
		n, tallies, tallies[1])

	for iter := 1; iter <= 12; iter++ {
		run.RunIteration()
		fmt.Printf("after iteration %d (%6.0f rounds): winner flags ", iter, run.Rounds)
		decided := -1
		for c := 1; c <= colours; c++ {
			w := run.CountVar(fmt.Sprintf("W%d", c))
			fmt.Printf("W%d=%-5d", c, w)
			if w == n {
				decided = c
			}
		}
		fmt.Println()
		if decided > 0 {
			ok := decided == 2
			fmt.Printf("\nswarm agreed on event %d — correct plurality: %v\n", decided, ok)
			fmt.Println("(every pairwise contest is a §3.2 majority; the plurality")
			fmt.Println(" colour is the one that wins all of its contests)")
			if !ok {
				log.Fatal("wrong winner")
			}
			return
		}
	}
	log.Fatal("no unanimous winner within the budget")
}
