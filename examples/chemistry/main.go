// Chemistry: watch the self-organizing rock–paper–scissors oscillator that
// drives the paper's phase clocks (§5.2). Population protocols are
// equivalent to fixed-volume chemical reaction networks, so this is a
// three-species CRN whose concentrations oscillate with period Θ(log n) —
// rendered as an ASCII strip chart.
//
//	go run ./examples/chemistry
package main

import (
	"fmt"
	"math"
	"strings"

	popkit "popkit"
)

func main() {
	const (
		n  = 50000
		nx = 40 // control/source molecules X: 1 ≤ #X ≤ n^(1−ε)
	)
	sim := popkit.NewOscillatorSim(n, nx, 7)

	fmt.Printf("n = %d molecules, #X = %d sources\n", n, nx)
	fmt.Println("reactions:  A_i + A_{i-1} -> A_i + A_i   (strong predation)")
	fmt.Println("            weak -> strong               (maturation)")
	fmt.Println("            X + A_j -> X + A_rand        (reseeding)")
	fmt.Println()
	fmt.Println("   rounds  A0                                     A1      A2 ")

	const width = 42
	glyphs := []byte{'#', '+', '.'}
	horizon := 130 * math.Log(n)
	for sim.Sim.Rounds() < horizon {
		sim.Step(4)
		c := sim.Species()
		var row [width]byte
		for i := range row {
			row[i] = ' '
		}
		for sp, cnt := range c {
			pos := int(float64(cnt) / float64(n) * float64(width-1))
			row[pos] = glyphs[sp]
		}
		fmt.Printf("%9.0f  |%s|  %6d %7d %7d\n", sim.Sim.Rounds(), string(row[:]), c[0], c[1], c[2])
	}

	windows := sim.Probe.Windows()
	if len(windows) == 0 {
		fmt.Println("\nno full oscillation within the horizon — try a longer run")
		return
	}
	var mean float64
	for _, w := range windows {
		mean += w
	}
	mean /= float64(len(windows))
	fmt.Printf("\ndominance windows observed: %d, mean %.0f rounds = %.1f·ln n",
		len(windows), mean, mean/math.Log(n))
	fmt.Printf("\ncyclic order A0→A1→A2 respected: %v\n", sim.Probe.CyclicOK())
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("Theorem 5.1: period Θ(log n) while 1 ≤ #X ≤ n^(1−ε).")
}
