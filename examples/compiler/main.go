// Compiler: write a protocol in the paper's imperative language, compile
// it to a flat population protocol (§4, §5.4) — phase-clock hierarchy,
// X-control process, and Π_τ-gated program rules — and run the compiled
// rule set under the plain uniform-random pairwise scheduler.
//
//	go run ./examples/compiler
package main

import (
	"fmt"
	"log"
	"math"

	popkit "popkit"
	"popkit/internal/bitmask"
)

// source: a rumor-spreading protocol with a kill switch — one leaf spreads
// the rumor R epidemically, and once everyone knows it, a second phase
// raises the acknowledgement flag Done (an "if exists" branch over the
// whole population).
const source = `
protocol Rumor
var R = off output
var Done = off output

thread Main uses R, Done
  repeat:
    execute for >= 2 ln n rounds ruleset:
      (R) + (!R) -> (R) + (R)
    if exists (!R):
      Done := off
    else:
      Done := on
`

func main() {
	prog, err := popkit.ParseProgram(source)
	if err != nil {
		log.Fatal(err)
	}
	c, err := popkit.CompileProgram(prog, popkit.CompileOptions{Control: popkit.XPreReduced})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled:", c.Describe())
	fmt.Println("leaf time paths:", c.LeafWindows)
	fmt.Println()

	const n = 1000
	rng := popkit.NewRNG(5)
	pop := c.NewPopulation(n, rng)
	rv, _ := c.Space.LookupVar("R")
	dv, _ := c.Space.LookupVar("Done")
	pop.SetAgent(0, rv.Set(pop.Agent(0), true)) // one agent knows the rumor

	sched := popkit.NewScheduler(popkit.NewEngine(c.Rules), pop, rng)
	trR := sched.Track("R", bitmask.Is(rv))
	trD := sched.Track("Done", bitmask.Is(dv))

	budget := 80 * float64(c.M) * 40 * math.Log(n)
	for sched.Rounds() < budget {
		sched.RunRounds(200)
		fmt.Printf("t=%8.0f rounds: rumor known by %4d/%d, acknowledged by %4d\n",
			sched.Rounds(), trR.Count(), n, trD.Count())
		if trR.Count() == n && trD.Count() == n {
			fmt.Println("\nrumor spread and acknowledged — the compiled clock-gated")
			fmt.Println("protocol executed the program under a plain random scheduler.")
			return
		}
	}
	log.Fatal("compiled run did not finish within the budget")
}
