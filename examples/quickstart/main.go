// Quickstart: elect a leader among 10,000 anonymous finite-state agents in
// polylogarithmic parallel time — the headline capability of "Population
// Protocols Are Fast" (Kosowski & Uznański, PODC 2018).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	popkit "popkit"
)

func main() {
	const n = 10000

	// The §3.1 LeaderElection program, written in the paper's imperative
	// language: all agents start as leaders; each iteration the leaders
	// flip coins and only the heads survive, unless nobody got heads.
	prog := popkit.LeaderElection()
	fmt.Printf("program %s (loop depth %d)\n\n", prog.Name, prog.LoopDepth())

	run, err := popkit.NewRun(prog, n, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Iterate until a unique leader remains, printing the halving.
	for iter := 0; iter < 200; iter++ {
		leaders := run.CountVar("L")
		fmt.Printf("iteration %2d: %5d leaders (%.0f parallel rounds elapsed)\n",
			iter, leaders, run.Rounds)
		if leaders == 1 {
			logn := math.Log(float64(n))
			fmt.Printf("\nunique leader after %d iterations and %.0f rounds ≈ %.1f·ln²n\n",
				iter, run.Rounds, run.Rounds/(logn*logn))
			fmt.Println("(Theorem 3.1: O(log n) iterations, O(log² n) rounds, w.h.p.)")
			return
		}
		run.RunIteration()
	}
	log.Fatal("did not converge — try another seed")
}
