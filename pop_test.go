package popkit

import (
	"bytes"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	prog := LeaderElection()
	run, err := NewRun(prog, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	iters, ok := run.RunUntil(func(r *Run) bool { return r.CountVar("L") == 1 }, 200)
	if !ok {
		t.Fatalf("no unique leader after %d iterations", iters)
	}
	if run.Rounds <= 0 {
		t.Error("no parallel time charged")
	}
}

func TestFacadeParse(t *testing.T) {
	src := `
protocol Demo
var A = on output

thread Main uses A
  repeat:
    A := on
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Demo" {
		t.Errorf("name = %q", p.Name)
	}
	if _, err := ParseProgram("garbage"); err == nil {
		t.Error("garbage parsed")
	}
}

func TestFacadeCompile(t *testing.T) {
	c, err := CompileProgram(Majority(2), CompileOptions{Control: XTwoMeet})
	if err != nil {
		t.Fatal(err)
	}
	if c.Rules.Len() == 0 {
		t.Error("empty compiled ruleset")
	}
	if c.LMax != 2 || c.M%4 != 0 {
		t.Errorf("geometry: l_max=%d m=%d", c.LMax, c.M)
	}
}

func TestFacadeSemilinear(t *testing.T) {
	pred := Threshold{Coef: []int{1, -1}, C: 1}
	colour := func(i int) int {
		switch {
		case i < 120:
			return 0
		case i < 200:
			return 1
		}
		return -1
	}
	e := NewSemilinearExact(pred, 300, colour, 3)
	if _, ok := e.RunUntilStable(colour, []int64{120, 80}, 500); !ok {
		t.Fatal("semilinear did not stabilize")
	}
	if e.Output() != 300 {
		t.Errorf("output = %d, want 300", e.Output())
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 15 {
		t.Errorf("only %d experiments registered", len(Experiments()))
	}
	if _, ok := LookupExperiment("E1"); !ok {
		t.Error("E1 missing")
	}
}

func TestFacadeCombinators(t *testing.T) {
	pred := AndPredicate{Parts: []Predicate{
		Threshold{Coef: []int{1}, C: 3},
		NotPredicate{Inner: Threshold{Coef: []int{1}, C: 7}},
	}}
	if !pred.Eval([]int64{5}) || pred.Eval([]int64{8}) || pred.Eval([]int64{2}) {
		t.Error("combined predicate oracle wrong")
	}
	_ = OrPredicate{Parts: []Predicate{pred}}
}

func TestFacadeSnapshotRoundTrip(t *testing.T) {
	c, err := CompileProgram(LeaderElection(), CompileOptions{Control: XPreReduced})
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(1)
	pop := c.NewPopulation(64, rng)
	var buf bytes.Buffer
	if _, err := pop.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDensePopulation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 64 {
		t.Errorf("restored population size %d", back.N())
	}
}
