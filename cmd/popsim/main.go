// Command popsim runs one of the paper's protocols and reports its
// convergence, either under the framework's good-iteration semantics
// (default) or as a fully compiled flat protocol under the plain
// uniform-random scheduler (-compiled).
//
// Usage:
//
//	popsim -p leader      -n 4096
//	popsim -p majority    -n 4096 -gap 1
//	popsim -p leaderexact -n 1024
//	popsim -p majorityexact -n 1024 -gap 1
//	popsim -p plurality   -n 1200 -colours 3
//	popsim -p leader -n 600 -compiled
//	popsim -p leader -n 4096 -json
//	popsim -p leader -n 4096 -seed 7 -replicas 8 -ndjson
//	popsim -p exactmajority -n 100000 -gap 1 -ndjson
//	popsim -p gsexactmajority -n 100000 -gap 1 -ndjson
//	popsim -p gs18leader -n 4096 -ndjson
//	popsim -server http://127.0.0.1:8080 -sweep '{"base":{"protocol":"leader"},"grid":{"n":[1024,4096]}}'
//
// With -json the run summary is emitted as a single JSON object on stdout
// for scripting; diagnostics stay on stderr.
//
// With -ndjson the run goes through the serving registry — the exact code
// popserved executes — and one NDJSON record per replica is streamed to
// stdout in replica order. The stream is byte-identical to a POST
// /v1/simulate response for the same (protocol, n, seed, replicas,
// parameters) spec, for any -workers count; -ndjson additionally unlocks
// the counted protocols: the baselines (approxmajority, exactmajority,
// coalescence) and the related-work library (gsexactmajority, aagmajority,
// gs18leader). SIGINT/SIGTERM cancel the sweep, flush the records already
// computed, and exit 130.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	popkit "popkit"
	"popkit/internal/bitmask"
	"popkit/internal/client"
	"popkit/internal/clock"
	"popkit/internal/expt"
	"popkit/internal/fault"
	"popkit/internal/frame"
	"popkit/internal/obs"
	"popkit/internal/serve"
)

var knownProtocols = map[string]bool{
	"leader": true, "leaderexact": true, "majority": true,
	"majorityexact": true, "plurality": true,
}

// summary is the -json output document, shared by both execution paths.
type summary struct {
	Protocol   string         `json:"protocol"`
	N          int            `json:"n"`
	Seed       uint64         `json:"seed"`
	Compiled   bool           `json:"compiled"`
	Iterations int            `json:"iterations,omitempty"`
	Rounds     float64        `json:"rounds"`
	Converged  bool           `json:"converged"`
	Counts     map[string]int `json:"counts,omitempty"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "popsim: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	var (
		proto     = flag.String("p", "leader", "protocol: leader | leaderexact | majority | majorityexact | plurality (with -ndjson: any registry protocol)")
		n         = flag.Int("n", 4096, "population size")
		gap       = flag.Int("gap", 1, "majority gap (#A − #B)")
		colours   = flag.Int("colours", 3, "plurality colour count")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		maxIters  = flag.Int("max-iters", 2000, "iteration budget")
		maxRounds = flag.Float64("max-rounds", 0, "round budget for counted protocols (-ndjson only; 0 = protocol default)")
		compiled  = flag.Bool("compiled", false, "run the compiled flat protocol (leader only; slow)")
		jsonOut   = flag.Bool("json", false, "emit the run summary as one JSON object")
		replicas  = flag.Int("replicas", 1, "independent replicas (requires -ndjson when > 1)")
		ndjson    = flag.Bool("ndjson", false, "stream one NDJSON record per replica (the popserved wire format)")
		workers   = flag.Int("workers", 1, "fleet workers for the -ndjson replica fan-out (does not change the output)")
		retries   = flag.Int("retries", 2, "re-runs per crashed replica (-ndjson local), or HTTP retries per request (-server)")
		server    = flag.String("server", "", "run the job on a popserved instance at this base URL instead of locally (requires -ndjson)")
		tenant    = flag.String("tenant", "", "tenant to bill server-side jobs to (X-Popkit-Tenant; requires -server)")
		jobID     = flag.String("job-id", "", "job id for server-side checkpoint/resume (requires -server and a journal-enabled popserved)")
		sweepJSON = flag.String("sweep", "", "POST this sweep grid spec (JSON) to the server's /v1/sweep and print the manifest (requires -server; ignores the per-job flags)")
		traceFile = flag.String("trace", "", "write an NDJSON event timeline of the run to FILE (local modes only; never changes the run's output)")
	)
	flag.Parse()

	if err := fault.EnableFromEnv(); err != nil {
		fail("%v", err)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *traceFile != "" && *server != "" {
		fail("-trace is local-only (the timeline lives in this process; -server runs elsewhere)")
	}
	trace, flushTrace := openTrace(*traceFile)

	if *tenant != "" && *server == "" {
		fail("-tenant needs -server (tenants exist in the server's fair queueing, not locally)")
	}

	if *sweepJSON != "" {
		if *server == "" {
			fail("-sweep needs -server (grids expand and dedupe server-side, against the server's result store)")
		}
		if *retries < 0 {
			fail("-retries must be ≥ 0 (got %d)", *retries)
		}
		os.Exit(runSweep(ctx, *sweepJSON, *server, *tenant, *retries))
	}

	if *ndjson {
		if *jsonOut {
			fail("-json and -ndjson are mutually exclusive")
		}
		if *compiled {
			fail("-compiled does not support -ndjson")
		}
		if *replicas < 1 {
			fail("-replicas must be ≥ 1 (got %d)", *replicas)
		}
		if *workers < 1 {
			fail("-workers must be ≥ 1 (got %d)", *workers)
		}
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		spec := expt.JobSpec{
			Protocol:  *proto,
			N:         *n,
			Seed:      *seed,
			Replicas:  *replicas,
			MaxRounds: *maxRounds,
		}
		// Flags with non-zero defaults are forwarded only where the
		// protocol accepts them (or the user explicitly set them, so the
		// registry can report the mismatch).
		switch *proto {
		case "majority", "majorityexact", "approxmajority", "exactmajority",
			"gsexactmajority", "aagmajority":
			spec.Gap = *gap
		default:
			if set["gap"] {
				spec.Gap = *gap
			}
		}
		if *proto == "plurality" || set["colours"] {
			spec.Colours = *colours
		}
		if knownProtocols[*proto] || set["max-iters"] {
			spec.MaxIters = *maxIters
		}
		if *retries < 0 {
			fail("-retries must be ≥ 0 (got %d)", *retries)
		}
		if *server != "" {
			spec.JobID = *jobID
			os.Exit(runRemote(ctx, spec, *server, *tenant, *retries))
		}
		if *jobID != "" {
			fail("-job-id needs -server (journals live on the popserved side)")
		}
		if trace != nil {
			// The registry attaches the context-carried trace to each
			// replica's executor; tallies happen after every RNG draw, so
			// the record stream is byte-identical with or without it.
			ctx = obs.WithTrace(ctx, trace)
		}
		code := runNDJSON(ctx, spec, *workers, *retries)
		flushTrace()
		os.Exit(code)
	}
	if *server != "" || *jobID != "" {
		fail("-server and -job-id need -ndjson (the wire format is per-replica records)")
	}
	if *replicas != 1 {
		fail("-replicas needs -ndjson (per-replica output has no single-summary form)")
	}

	// Validate every flag combination up front, before any work starts.
	if !knownProtocols[*proto] {
		fail("unknown protocol %q (want leader | leaderexact | majority | majorityexact | plurality)", *proto)
	}
	if *compiled && *proto != "leader" {
		fail("-compiled supports only -p leader (got %q); the other protocols compile but are too slow to demonstrate here", *proto)
	}
	if *n < 2 {
		fail("-n must be ≥ 2 (got %d)", *n)
	}
	if *maxIters < 1 {
		fail("-max-iters must be ≥ 1 (got %d)", *maxIters)
	}
	switch *proto {
	case "majority", "majorityexact":
		if *gap < 0 || *gap > *n {
			fail("-gap must be in [0, n] (got %d with n=%d)", *gap, *n)
		}
	case "plurality":
		if *colours < 2 {
			fail("-colours must be ≥ 2 (got %d)", *colours)
		}
		if *n < (*colours+1)*(*colours) {
			fail("-n too small for %d colours (need at least %d agents)", *colours, (*colours+1)*(*colours))
		}
	}

	if *compiled {
		runCompiled(ctx, *proto, *n, *seed, *jsonOut, trace, flushTrace)
		return
	}

	var prog *popkit.Program
	switch *proto {
	case "leader":
		prog = popkit.LeaderElection()
	case "leaderexact":
		prog = popkit.LeaderElectionExact()
	case "majority":
		prog = popkit.Majority(2)
	case "majorityexact":
		prog = popkit.MajorityExact(2)
	case "plurality":
		prog = popkit.Plurality(*colours, 2)
	}

	run, err := popkit.NewRun(prog, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popsim:", err)
		os.Exit(1)
	}
	setupInputs(run, *proto, *n, *gap, *colours)
	run.Trace = trace

	done := convergence(*proto, *n, *colours)
	iters, ok := run.RunUntil(func(e *frame.Executor) bool {
		// SIGINT/SIGTERM break out of the run; the summary computed so far
		// is still emitted before exiting 130.
		return ctx.Err() != nil || done(e)
	}, *maxIters)
	interrupted := ctx.Err() != nil
	if interrupted {
		ok = false
	}
	flushTrace()
	if *jsonOut {
		emit(summary{
			Protocol:   *proto,
			N:          *n,
			Seed:       *seed,
			Iterations: iters,
			Rounds:     run.Rounds,
			Converged:  ok,
			Counts:     counts(run, *proto, *colours),
		})
	} else {
		fmt.Printf("protocol=%s n=%d seed=%d\n", prog.Name, *n, *seed)
		fmt.Printf("iterations=%d rounds=%.0f (%.1f × ln²n) converged=%v\n",
			iters, run.Rounds, run.Rounds/math.Pow(math.Log(float64(*n)), 2), ok)
		report(run, *proto, *colours)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "popsim: interrupted; partial summary flushed")
		os.Exit(130)
	}
	if !ok {
		os.Exit(1)
	}
}

// runNDJSON executes the spec through the serving registry — the exact code
// popserved runs — streaming one NDJSON record per replica to stdout in
// replica order. Cancelling ctx (SIGINT/SIGTERM) aborts outstanding
// replicas, flushes what completed, and returns 130.
func runNDJSON(ctx context.Context, spec expt.JobSpec, workers, retries int) int {
	reg := serve.NewRegistry()
	p, err := reg.Normalize(&spec, math.MaxInt, 1<<20)
	if err != nil {
		fail("%v", err)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	unconverged := 0
	runErr := p.Run(ctx, spec, serve.RunOptions{Workers: workers, MaxRetries: retries}, func(rec expt.ReplicaRecord) {
		if rec.Err == "" && !rec.Converged {
			unconverged++
		}
		line, err := rec.MarshalLine()
		if err != nil {
			return
		}
		out.Write(line)
		out.Flush() // line-wise, so an interrupt loses nothing already done
	})
	switch {
	case ctx.Err() != nil:
		fmt.Fprintln(os.Stderr, "popsim: interrupted; partial records flushed")
		return 130
	case runErr != nil:
		fmt.Fprintf(os.Stderr, "popsim: %v\n", runErr)
		return 1
	case unconverged > 0:
		fmt.Fprintf(os.Stderr, "popsim: %d replica(s) did not converge within budget\n", unconverged)
		return 1
	}
	return 0
}

// runRemote streams the spec from a popserved instance through the retrying
// client: backpressure (429), busy job ids (409), transient errors, and
// mid-stream disconnects are retried with backoff, and on reconnect the
// stream resumes after the last delivered replica — stdout stays
// byte-identical to a local -ndjson run of the same spec.
func runRemote(ctx context.Context, spec expt.JobSpec, base, tenant string, retries int) int {
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	cl := client.New(client.Options{
		BaseURL:    base,
		Tenant:     tenant,
		MaxRetries: retries,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "popsim: "+format+"\n", args...)
		},
	})
	unconverged := 0
	err := cl.Stream(ctx, spec, func(rec expt.ReplicaRecord, line []byte) {
		if !rec.Converged {
			unconverged++
		}
		out.Write(line)
		out.Flush() // line-wise, so an interrupt loses nothing already done
	})
	if st := cl.LastCacheStatus(); st != "" {
		fmt.Fprintf(os.Stderr, "popsim: server cache: %s\n", st)
	}
	switch {
	case ctx.Err() != nil:
		fmt.Fprintln(os.Stderr, "popsim: interrupted; partial records flushed")
		return 130
	case err != nil:
		fmt.Fprintf(os.Stderr, "popsim: %v\n", err)
		return 1
	case unconverged > 0:
		fmt.Fprintf(os.Stderr, "popsim: %d replica(s) did not converge within budget\n", unconverged)
		return 1
	}
	return 0
}

// runSweep posts a parameter-grid spec to the server's /v1/sweep, printing
// one manifest line per grid point to stdout (the exact server bytes) and
// the closing hit/miss summary to stderr.
func runSweep(ctx context.Context, specJSON, base, tenant string, retries int) int {
	var sw expt.SweepSpec
	dec := json.NewDecoder(strings.NewReader(specJSON))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sw); err != nil {
		fail("bad -sweep spec: %v", err)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	cl := client.New(client.Options{
		BaseURL:    base,
		Tenant:     tenant,
		MaxRetries: retries,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "popsim: "+format+"\n", args...)
		},
	})
	errors := 0
	sum, err := cl.Sweep(ctx, sw, func(res expt.SweepResult, line []byte) {
		if res.Err != "" {
			errors++
		}
		out.Write(line)
		out.Flush()
	})
	switch {
	case ctx.Err() != nil:
		fmt.Fprintln(os.Stderr, "popsim: interrupted; partial manifest flushed")
		return 130
	case err != nil:
		fmt.Fprintf(os.Stderr, "popsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "popsim: sweep done: %d point(s), %d hit, %d miss, %d inflight, %d error\n",
		sum.Points, sum.Hits, sum.Misses, sum.Inflight, sum.Errors)
	if errors > 0 {
		return 1
	}
	return 0
}

// openTrace builds the -trace timeline: a bounded obs ring buffer plus a
// flush function that writes it to path as NDJSON. A "" path returns a nil
// trace (every layer treats that as tracing-off) and a no-op flush.
func openTrace(path string) (*obs.Trace, func()) {
	if path == "" {
		return nil, func() {}
	}
	tr := obs.NewTrace(obs.DefaultTraceCap)
	return tr, func() {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popsim: trace: %v\n", err)
			return
		}
		defer f.Close()
		if err := tr.WriteNDJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "popsim: trace: %v\n", err)
		}
	}
}

func emit(s summary) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(s); err != nil {
		fmt.Fprintln(os.Stderr, "popsim:", err)
		os.Exit(1)
	}
}

// counts gathers the protocol's headline variable counts for -json.
func counts(run *popkit.Run, proto string, colours int) map[string]int {
	out := map[string]int{}
	switch proto {
	case "leader", "leaderexact":
		out["L"] = run.CountVar("L")
	case "majority", "majorityexact":
		out["YA"] = run.CountVar("YA")
	case "plurality":
		for c := 1; c <= colours; c++ {
			key := fmt.Sprintf("W%d", c)
			out[key] = run.CountVar(key)
		}
	}
	return out
}

func setupInputs(run *popkit.Run, proto string, n, gap, colours int) {
	switch proto {
	case "majority", "majorityexact":
		a, _ := run.Space.LookupVar("A")
		b, _ := run.Space.LookupVar("B")
		nB := (n - gap) / 2
		nA := nB + gap
		run.SetInput(func(i int, s bitmask.State) bitmask.State {
			switch {
			case i < nA:
				s = a.Set(s, true)
			case i < nA+nB:
				s = b.Set(s, true)
			default:
				return s
			}
			if proto == "majorityexact" {
				at, _ := run.Space.LookupVar("At")
				bt, _ := run.Space.LookupVar("Bt")
				if i < nA {
					s = at.Set(s, true)
				} else {
					s = bt.Set(s, true)
				}
			}
			return s
		})
	case "plurality":
		vars := make([]bitmask.Var, colours)
		for i := range vars {
			vars[i], _ = run.Space.LookupVar(fmt.Sprintf("C%d", i+1))
		}
		sizes := make([]int, colours)
		base := n / (colours + 1)
		rem := n
		for i := range sizes {
			sizes[i] = base - i
			rem -= sizes[i]
		}
		sizes[0] += rem
		run.SetInput(func(i int, s bitmask.State) bitmask.State {
			acc := 0
			for c := 0; c < colours; c++ {
				acc += sizes[c]
				if i < acc {
					return vars[c].Set(s, true)
				}
			}
			return s
		})
	}
}

func convergence(proto string, n, colours int) func(*frame.Executor) bool {
	switch proto {
	case "leader":
		return func(e *frame.Executor) bool { return e.CountVar("L") == 1 }
	case "leaderexact":
		return func(e *frame.Executor) bool { return e.CountVar("L") == 1 && e.CountVar("R") == 1 }
	case "majority":
		return func(e *frame.Executor) bool {
			y := e.CountVar("YA")
			return (y == 0 || y == n) && e.Iterations >= 3
		}
	case "majorityexact":
		return func(e *frame.Executor) bool {
			return (e.CountVar("At") == 0 || e.CountVar("Bt") == 0) && e.Iterations >= 3
		}
	default: // plurality
		return func(e *frame.Executor) bool {
			return e.CountVar("W1") == n
		}
	}
}

func report(run *popkit.Run, proto string, colours int) {
	switch proto {
	case "leader", "leaderexact":
		fmt.Printf("leaders=%d\n", run.CountVar("L"))
	case "majority", "majorityexact":
		fmt.Printf("YA=%d (on means A is the majority)\n", run.CountVar("YA"))
	case "plurality":
		for c := 1; c <= colours; c++ {
			fmt.Printf("W%d=%d ", c, run.CountVar(fmt.Sprintf("W%d", c)))
		}
		fmt.Println()
	}
}

func runCompiled(ctx context.Context, proto string, n int, seed uint64, jsonOut bool, trace *obs.Trace, flushTrace func()) {
	c, err := popkit.CompileProgram(popkit.LeaderElection(), popkit.CompileOptions{Control: popkit.XPreReduced})
	if err != nil {
		fmt.Fprintln(os.Stderr, "popsim:", err)
		os.Exit(1)
	}
	if !jsonOut {
		fmt.Println(c.Describe())
	}
	rng := popkit.NewRNG(seed)
	pop := c.NewPopulation(n, rng)
	eng := popkit.NewEngine(c.Rules)
	r := popkit.NewScheduler(eng, pop, rng)
	if trace != nil {
		r.Stats = obs.NewRuleStats(eng.NumRules())
	}
	lv, _ := c.Space.LookupVar("L")
	tr := r.Track("L", bitmask.Is(lv))
	// Phase probes emit a "phase-tick" event whenever a hierarchy clock's
	// dominant phase moves, sampled at most once per parallel round. They
	// only read the population, never the RNG, so the run is unchanged.
	var probes []*clock.PhaseProbe
	for j, b := range c.Hierarchy.Clocks {
		if p := clock.NewPhaseProbe(b, j+1, 0, trace); p != nil {
			probes = append(probes, p)
		}
	}
	nextSample := 0.0
	budget := 60.0 * float64(c.M) * 60 * math.Log(float64(n))
	rounds, ok := r.RunUntil(func(*popkit.Scheduler) bool {
		if len(probes) > 0 {
			if rt := r.Rounds(); rt >= nextSample {
				nextSample = math.Floor(rt) + 1
				for _, p := range probes {
					p.Sample(pop, rt)
				}
			}
		}
		return ctx.Err() != nil || tr.Count() == 1
	}, 25, budget)
	interrupted := ctx.Err() != nil
	if interrupted {
		ok = tr.Count() == 1
	}
	if trace != nil {
		// Per-rule-group firing tallies, one closing event per group in
		// name order, so the timeline ends with a firing census.
		tally := eng.GroupTally(r.Stats.Fired())
		names := make([]string, 0, len(tally))
		for name := range tally {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			trace.Emit(obs.Event{Kind: "rule-group", Rounds: rounds, Name: name, Value: int64(tally[name])})
		}
		flushTrace()
	}
	if jsonOut {
		emit(summary{
			Protocol:  proto,
			N:         n,
			Seed:      seed,
			Compiled:  true,
			Rounds:    rounds,
			Converged: ok,
			Counts:    map[string]int{"L": tr.Count()},
		})
	} else {
		fmt.Printf("compiled run: leaders=%d rounds=%.0f converged=%v\n", tr.Count(), rounds, ok)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "popsim: interrupted; partial summary flushed")
		os.Exit(130)
	}
	if !ok {
		os.Exit(1)
	}
}
