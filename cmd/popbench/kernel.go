package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"popkit/internal/baseline"
	"popkit/internal/bitmask"
	"popkit/internal/engine"
)

// The -kernel mode measures the raw simulation kernels outside the testing
// harness and commits the numbers: results/BENCH_kernel.json is the
// authoritative source for the capability matrix in EXPERIMENTS.md and for
// the per-firing costs quoted in internal/expt.CapabilityMatrix.

// kernelRow is one (runner, n) measurement.
type kernelRow struct {
	Runner  string `json:"runner"`
	N       int64  `json:"n"`
	Firings uint64 `json:"firings"`
	// Interactions includes the quiescent activations the counted kernels
	// leap over; for the dense runner it equals Firings' activation count.
	Interactions     uint64  `json:"interactions"`
	NsPerFiring      float64 `json:"ns_per_firing"`
	NsPerInteraction float64 `json:"ns_per_interaction"`
}

// kernelFile is the BENCH_kernel.json document.
type kernelFile struct {
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	NumCPU   int    `json:"num_cpu"`
	CPUModel string `json:"cpu_model,omitempty"`
	Workload string `json:"workload"`
	// PrePRCountedNsPerFiring is the counted kernel's per-firing cost before
	// the incremental match-count rework (BenchmarkCountStep at the parent
	// of the kernel PR): mean of three runs at 647.6, 778.8 and 808.1 ns.
	PrePRCountedNsPerFiring float64     `json:"prepr_counted_ns_per_firing"`
	Rows                    []kernelRow `json:"rows"`
}

// cpuModel best-effort reads the CPU model string (Linux only).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// measureCounted times `target` firings of the E11 exact-majority workload
// on the counted or batched kernel, rebuilding the population whenever the
// protocol reaches quiescence (rebuilds are excluded from the timing).
func measureCounted(batch bool, n int64, target uint64) kernelRow {
	em := baseline.NewExactMajority4()
	proto := engine.CompileProtocol(em.Rules())
	var busy time.Duration
	var fired, interactions uint64
	for fired < target {
		pop := em.Population(n/2+1, n/2)
		if batch {
			br := engine.NewBatchRunner(proto, pop, engine.NewRNG(1))
			t0 := time.Now()
			for fired < target && br.LeapStep(0) {
				fired++
			}
			busy += time.Since(t0)
			interactions += br.Interactions
		} else {
			cr := engine.NewCountRunner(proto, pop, engine.NewRNG(1))
			t0 := time.Now()
			for fired < target && cr.LeapStep(0) {
				fired++
			}
			busy += time.Since(t0)
			interactions += cr.Interactions
		}
	}
	name := "counted"
	if batch {
		name = "batch"
	}
	return kernelRow{
		Runner:           name,
		N:                n,
		Firings:          fired,
		Interactions:     interactions,
		NsPerFiring:      float64(busy.Nanoseconds()) / float64(fired),
		NsPerInteraction: float64(busy.Nanoseconds()) / float64(interactions),
	}
}

// measureAggregate times the aggregate kernel over a fixed budget of
// scheduler activations on the same workload. The budget is in
// interactions rather than firings because the aggregate runner resolves
// whole collision-free runs per step — ns_per_interaction is the number
// the kernels compete on. Rebuilds on quiescence are excluded from the
// timing, like measureCounted's.
func measureAggregate(n int64, targetInteractions uint64) kernelRow {
	em := baseline.NewExactMajority4()
	proto := engine.CompileProtocol(em.Rules())
	var busy time.Duration
	var fired, interactions uint64
	for interactions < targetInteractions {
		pop := em.Population(n/2+1, n/2)
		ar := engine.NewAggregateRunner(proto, pop, engine.NewRNG(1))
		left := targetInteractions - interactions
		t0 := time.Now()
		for ar.Interactions < left && ar.LeapStep(left) {
		}
		busy += time.Since(t0)
		interactions += ar.Interactions
		fired += ar.FiredTotal
	}
	return kernelRow{
		Runner:           "aggregate",
		N:                n,
		Firings:          fired,
		Interactions:     interactions,
		NsPerFiring:      float64(busy.Nanoseconds()) / float64(fired),
		NsPerInteraction: float64(busy.Nanoseconds()) / float64(interactions),
	}
}

// measureDense times `target` scheduler activations of the same workload on
// the per-agent dense runner, which cannot leap: every activation costs one
// Step, firing or not.
func measureDense(n int64, target uint64) kernelRow {
	em := baseline.NewExactMajority4()
	proto := engine.CompileProtocol(em.Rules())
	a := em.Strong.Set(em.IsA.Set(bitmask.State{}, true), true)
	b := em.Strong.Set(bitmask.State{}, true)
	nA := int(n)/2 + 1
	pop := engine.NewDenseInit(int(n), func(i int) bitmask.State {
		if i < nA {
			return a
		}
		return b
	})
	r := engine.NewRunner(proto, pop, engine.NewRNG(1))
	t0 := time.Now()
	for i := uint64(0); i < target; i++ {
		r.Step()
	}
	busy := time.Since(t0)
	ns := float64(busy.Nanoseconds()) / float64(target)
	return kernelRow{
		Runner:           "dense",
		N:                n,
		Firings:          target,
		Interactions:     target,
		NsPerFiring:      ns,
		NsPerInteraction: ns,
	}
}

// runKernel executes the kernel benchmark matrix and writes
// <out>/BENCH_kernel.json. Quick mode shrinks the firing budgets so
// `make check` can smoke-test the path.
func runKernel(out string, quick bool) int {
	target := uint64(1_000_000)
	denseTarget := uint64(2_000_000)
	if quick {
		target, denseTarget = 50_000, 100_000
	}
	kf := kernelFile{
		GOOS:                    runtime.GOOS,
		GOARCH:                  runtime.GOARCH,
		NumCPU:                  runtime.NumCPU(),
		CPUModel:                cpuModel(),
		Workload:                "E11 4-state exact majority [DV12], gap 1",
		PrePRCountedNsPerFiring: 745,
	}
	// The aggregate kernel's budget is in interactions (it fires whole
	// runs per step): ~100 activations per agent, capped so the biggest
	// populations stay measurable, and shrunk further in quick mode.
	aggTarget := func(n int64) uint64 {
		t := uint64(100 * n)
		if t > 1_000_000_000 {
			t = 1_000_000_000
		}
		if quick && t > 1_000_000 {
			t = 1_000_000
		}
		return t
	}
	for _, n := range []int64{1e4, 1e6} {
		kf.Rows = append(kf.Rows, measureDense(n, denseTarget))
	}
	for _, n := range []int64{1e4, 1e6, 1e8, 1e9} {
		kf.Rows = append(kf.Rows, measureCounted(false, n, target))
		kf.Rows = append(kf.Rows, measureCounted(true, n, target))
		kf.Rows = append(kf.Rows, measureAggregate(n, aggTarget(n)))
	}
	fmt.Printf("%-8s %12s %12s %14s %16s\n", "runner", "n", "firings", "ns/firing", "ns/interaction")
	for _, r := range kf.Rows {
		fmt.Printf("%-8s %12d %12d %14.1f %16.4f\n", r.Runner, r.N, r.Firings, r.NsPerFiring, r.NsPerInteraction)
	}
	path := filepath.Join(out, "BENCH_kernel.json")
	data, err := json.MarshalIndent(kf, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "popbench: encoding %s: %v\n", path, err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "popbench: writing %s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "popbench: wrote %s\n", path)
	return 0
}
