// Command popbench regenerates the reproduction experiments of
// EXPERIMENTS.md: every table and figure series indexed in DESIGN.md.
//
// Usage:
//
//	popbench [-e E1,E3,F2] [-seeds N] [-quick] [-out DIR] [-list]
//
// Without -e it runs every experiment in order. Tables are printed as
// Markdown to stdout; figure CSVs are written into -out (default ".").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"popkit/internal/expt"
)

func main() {
	var (
		only  = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		seeds = flag.Int("seeds", 10, "runs per configuration point")
		quick = flag.Bool("quick", false, "smallest configurations only")
		out   = flag.String("out", ".", "directory for figure CSV files")
		list  = flag.Bool("list", false, "list experiments and exit")
		seed  = flag.Uint64("seed", 0, "base RNG seed")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	var wanted []expt.Experiment
	if *only == "" {
		wanted = expt.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := expt.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "popbench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			wanted = append(wanted, e)
		}
	}

	cfg := expt.Config{Seeds: *seeds, Quick: *quick, BaseSeed: *seed}
	exitCode := 0
	for _, e := range wanted {
		fmt.Printf("## %s — %s\n\n", e.ID, e.Claim)
		start := time.Now()
		res := e.Run(cfg)
		for _, tb := range res.Tables {
			fmt.Println(tb.Markdown())
		}
		for name, csv := range res.Figures {
			path := filepath.Join(*out, name)
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "popbench: writing %s: %v\n", path, err)
				exitCode = 1
				continue
			}
			fmt.Printf("wrote %s (%d bytes)\n\n", path, len(csv))
		}
		fmt.Printf("_%s completed in %s_\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exitCode)
}
