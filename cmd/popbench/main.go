// Command popbench regenerates the reproduction experiments of
// EXPERIMENTS.md: every table and figure series indexed in DESIGN.md.
//
// Usage:
//
//	popbench [-e E1,E3,F2] [-seeds N] [-workers N] [-quick] [-out DIR] [-list]
//	popbench -kernel [-quick] [-out DIR]
//
// Without -e it runs every experiment in order. Tables are printed as
// Markdown to stdout; figure CSVs and the machine-readable run record
// BENCH_results.json are written into -out (default "."). Multi-seed
// experiments fan their replicas out across -workers fleet workers
// (default: one per CPU); per-replica RNG streams make the output
// byte-identical for any worker count.
//
// -kernel skips the experiments and instead measures the raw simulation
// kernels (dense / counted / batch) on the E11 exact-majority workload,
// writing BENCH_kernel.json into -out.
//
// -compare runs the related-work protocol library (gs18leader,
// gsexactmajority, aagmajority) head-to-head against the incumbent leader
// and exact-majority entries across an n-grid, recording rounds,
// interactions, state counts and empirical correctness into the "compare"
// section of BENCH_results.json.
//
// -cpuprofile, -memprofile and -trace capture pprof/trace artifacts of
// whichever mode ran, for chasing kernel regressions:
//
//	popbench -e E11 -cpuprofile cpu.out && go tool pprof cpu.out
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"syscall"
	"time"

	"popkit/internal/expt"
	"popkit/internal/fleet"
	"popkit/internal/obs"
	"popkit/internal/stats"
)

// benchRecord is one experiment's entry in BENCH_results.json.
type benchRecord struct {
	ID     string  `json:"id"`
	Claim  string  `json:"claim"`
	WallMS float64 `json:"wall_ms"`
	// Interactions counts simulated scheduler activations (including ones
	// the counted kernels leapt over); NsPerInteraction = wall time divided
	// by it, the headline throughput number for kernel comparisons.
	Interactions     uint64         `json:"interactions,omitempty"`
	NsPerInteraction float64        `json:"ns_per_interaction,omitempty"`
	Tables           []*stats.Table `json:"tables"`
	Figures          []string       `json:"figures,omitempty"`
}

// benchFile is the top-level BENCH_results.json document; the config block
// makes runs diffable across PRs.
type benchFile struct {
	Seeds    int     `json:"seeds"`
	Quick    bool    `json:"quick"`
	BaseSeed uint64  `json:"base_seed"`
	Workers  int     `json:"workers"`
	WallMS   float64 `json:"wall_ms"`
	// Interrupted marks a run cut short by SIGINT/SIGTERM: Experiments then
	// holds only the entries that completed before the signal.
	Interrupted bool `json:"interrupted,omitempty"`
	// ReplicaLatency summarizes per-replica wall-clock time across every
	// experiment of the run (count, mean, p50/p90/p95/p99, µs buckets) —
	// the latency distribution behind the throughput numbers.
	ReplicaLatency obs.HistogramSnapshot `json:"replica_latency"`
	Experiments    []benchRecord         `json:"experiments"`
	// QoS carries the cost-model calibration block a prior `popbench -qos`
	// run left in the file; a full experiment run preserves it verbatim.
	QoS json.RawMessage `json:"qos,omitempty"`
	// Compare likewise preserves a prior `popbench -compare` head-to-head
	// grid across full experiment runs.
	Compare json.RawMessage `json:"compare,omitempty"`
}

func main() { os.Exit(run()) }

// run carries the whole program so the profiling defers fire before exit.
func run() int {
	var (
		only       = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		seeds      = flag.Int("seeds", 10, "runs per configuration point")
		quick      = flag.Bool("quick", false, "smallest configurations only")
		out        = flag.String("out", ".", "directory for figure CSV files and BENCH_results.json")
		list       = flag.Bool("list", false, "list experiments and exit")
		seed       = flag.Uint64("seed", 0, "base RNG seed")
		workers    = flag.Int("workers", runtime.NumCPU(), "fleet workers for multi-seed sweeps")
		replicaLog = flag.String("replica-log", "", "stream per-replica results to this JSONL file")
		noProgress = flag.Bool("no-progress", false, "suppress fleet progress reports on stderr")
		kernel     = flag.Bool("kernel", false, "measure the raw simulation kernels into BENCH_kernel.json and exit")
		qosFlag    = flag.Bool("qos", false, "measure cost-model prediction error per size class into BENCH_results.json and exit")
		compare    = flag.Bool("compare", false, "run the related-work head-to-head grid into BENCH_results.json and exit")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		traceOut   = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return 0
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			return 1
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			return 1
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			}
		}()
	}
	if *kernel {
		return runKernel(*out, *quick)
	}
	if *qosFlag {
		// A BENCH_kernel.json sitting next to the output (e.g. -out results)
		// overrides the baked-in grid, exactly as -cost-model does on the
		// servers; a missing file silently keeps the defaults.
		return runQoS(*out, *quick, *workers, filepath.Join(*out, "BENCH_kernel.json"))
	}
	if *compare {
		return runCompare(*out, *quick, *workers, *seed)
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "popbench: -workers must be ≥ 1 (got %d)\n", *workers)
		return 2
	}
	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "popbench: -seeds must be ≥ 1 (got %d)\n", *seeds)
		return 2
	}

	var wanted []expt.Experiment
	if *only == "" {
		wanted = expt.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := expt.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "popbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			wanted = append(wanted, e)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := expt.Config{Seeds: *seeds, Quick: *quick, BaseSeed: *seed, Workers: *workers, Ctx: ctx}
	if !*noProgress {
		cfg.Progress = os.Stderr
	}
	// Every replica's wall-clock time feeds one latency histogram, so
	// BENCH_results.json carries the latency distribution behind the
	// throughput numbers. Observing Elapsed reads the already-computed
	// result and cannot change any replica's output.
	replicaHist := &obs.Histogram{}
	var replicaSink fleet.ResultSink = fleet.SinkFunc(func(r fleet.Result) {
		replicaHist.Observe(r.Elapsed)
	})
	if *replicaLog != "" {
		f, err := os.Create(*replicaLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			return 1
		}
		defer f.Close()
		replicaSink = fleet.MultiSink{fleet.NewJSONLSink(f), replicaSink}
	}
	cfg.ReplicaSink = replicaSink

	bench := benchFile{Seeds: *seeds, Quick: *quick, BaseSeed: *seed, Workers: *workers}
	begin := time.Now()
	exitCode := 0
	for _, e := range wanted {
		if ctx.Err() != nil {
			bench.Interrupted = true
			break
		}
		fmt.Printf("## %s — %s\n\n", e.ID, e.Claim)
		start := time.Now()
		res, err := runExperiment(ctx, e, cfg)
		if err != nil {
			// Interrupted mid-experiment: drop this experiment's partial
			// output but still flush everything that completed before it.
			fmt.Fprintf(os.Stderr, "popbench: %s %v\n", e.ID, err)
			bench.Interrupted = true
			break
		}
		elapsed := time.Since(start)
		for _, tb := range res.Tables {
			fmt.Println(tb.Markdown())
		}
		rec := benchRecord{
			ID:           e.ID,
			Claim:        e.Claim,
			WallMS:       float64(elapsed.Microseconds()) / 1000,
			Interactions: res.Interactions,
			Tables:       res.Tables,
		}
		if res.Interactions > 0 {
			rec.NsPerInteraction = float64(elapsed.Nanoseconds()) / float64(res.Interactions)
		}
		figNames := make([]string, 0, len(res.Figures))
		for name := range res.Figures {
			figNames = append(figNames, name)
		}
		sort.Strings(figNames) // stable order keeps BENCH_results.json diffable
		for _, name := range figNames {
			csv := res.Figures[name]
			path := filepath.Join(*out, name)
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "popbench: writing %s: %v\n", path, err)
				exitCode = 1
				continue
			}
			rec.Figures = append(rec.Figures, name)
			fmt.Printf("wrote %s (%d bytes)\n\n", path, len(csv))
		}
		bench.Experiments = append(bench.Experiments, rec)
		fmt.Printf("_%s completed in %s_\n\n", e.ID, elapsed.Round(time.Millisecond))
	}
	bench.WallMS = float64(time.Since(begin).Microseconds()) / 1000
	bench.ReplicaLatency = replicaHist.Snapshot()

	benchPath := filepath.Join(*out, "BENCH_results.json")
	// Carry over the qos calibration block of an earlier `popbench -qos`
	// run, so regenerating the experiments does not erase it.
	if raw, err := os.ReadFile(benchPath); err == nil {
		var prior struct {
			QoS     json.RawMessage `json:"qos"`
			Compare json.RawMessage `json:"compare"`
		}
		if json.Unmarshal(raw, &prior) == nil {
			bench.QoS = prior.QoS
			bench.Compare = prior.Compare
		}
	}
	if data, err := json.MarshalIndent(bench, "", "  "); err != nil {
		fmt.Fprintf(os.Stderr, "popbench: encoding %s: %v\n", benchPath, err)
		exitCode = 1
	} else if err := os.WriteFile(benchPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "popbench: writing %s: %v\n", benchPath, err)
		exitCode = 1
	} else {
		fmt.Fprintf(os.Stderr, "popbench: wrote %s\n", benchPath)
	}
	if bench.Interrupted {
		fmt.Fprintln(os.Stderr, "popbench: interrupted; partial results flushed")
		return 130
	}
	return exitCode
}

// runExperiment runs one experiment, converting the panic replicate raises
// when the fleet context is cancelled back into an error so an interrupt
// flushes the completed experiments instead of crashing. Panics unrelated
// to cancellation propagate unchanged.
func runExperiment(ctx context.Context, e expt.Experiment, cfg expt.Config) (res expt.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ctx.Err() != nil {
				err = fmt.Errorf("interrupted: %v", ctx.Err())
				return
			}
			panic(r)
		}
	}()
	return e.Run(cfg), nil
}
