package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"popkit/internal/expt"
	"popkit/internal/serve"
	"popkit/internal/stats"
)

// The -compare mode runs the related-work protocol library head-to-head
// against the repo's incumbent entries, through the same registry code
// popserved serves. Two families: leader election (leader, coalescence,
// gs18leader) and exact majority at the adversarial gap 1 (exactmajority,
// gsexactmajority, aagmajority). For every (protocol, n) cell it records
// convergence time (parallel rounds and scheduler interactions), the
// per-agent state count, and the empirical correctness probability, into
// the "compare" section of BENCH_results.json — the measured table behind
// EXPERIMENTS.md's head-to-head comparison.

// compareRow is one (protocol, n) cell of the grid.
type compareRow struct {
	Family   string `json:"family"` // "leader" or "majority"
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	Seeds    int    `json:"seeds"`
	// States is the per-agent state count at this n (the space axis of the
	// time/space trade-off the related work optimizes).
	States uint64 `json:"states"`
	// Runner is the kernel tier the driver ran on ("framework" for the
	// paper's program executor, which bypasses runner selection).
	Runner     string  `json:"runner"`
	MeanRounds float64 `json:"mean_rounds"`
	P90Rounds  float64 `json:"p90_rounds"`
	// MeanInteractions is 0 for framework protocols, whose executor does
	// not count scheduler activations.
	MeanInteractions float64 `json:"mean_interactions"`
	Converged        int     `json:"converged"`
	// Correct counts replicas that converged to the right answer: a unique
	// leader, or the true (A) majority at gap 1.
	Correct     int     `json:"correct"`
	CorrectProb float64 `json:"correct_prob"`
	WallMS      float64 `json:"wall_ms"`
}

// compareSection is the "compare" block of BENCH_results.json.
type compareSection struct {
	Quick  bool         `json:"quick"`
	Seeds  int          `json:"seeds"`
	Grid   []int        `json:"grid"`
	WallMS float64      `json:"wall_ms"`
	Rows   []compareRow `json:"rows"`
	// Table is the Markdown-renderable form of Rows, printed to stdout and
	// pasted into EXPERIMENTS.md.
	Table *stats.Table `json:"table"`
}

// compareCell is one grid cell before it runs.
type compareCell struct {
	family   string
	protocol string
	n        int
	gap      int
}

// compareGrid enumerates the head-to-head cells. -quick keeps the two
// sizes the CI smoke asserts on; the full grid adds n = 8192.
func compareGrid(quick bool) (cells []compareCell, ns []int, seeds int) {
	ns = []int{512, 2048}
	seeds = 3
	if !quick {
		ns = append(ns, 8192)
		seeds = 8
	}
	leaders := []string{"leader", "coalescence", "gs18leader"}
	majorities := []string{"exactmajority", "gsexactmajority", "aagmajority"}
	for _, n := range ns {
		for _, p := range leaders {
			cells = append(cells, compareCell{family: "leader", protocol: p, n: n})
		}
		for _, p := range majorities {
			cells = append(cells, compareCell{family: "majority", protocol: p, n: n, gap: 1})
		}
	}
	return cells, ns, seeds
}

// compareCorrect judges one replica record: did it converge to the right
// answer? The leader family must end with exactly one leader; the majority
// family starts with A ahead by the gap, so the only correct verdict is
// unanimous A.
func compareCorrect(protocol string, n int, rec expt.ReplicaRecord) bool {
	if !rec.Converged || rec.Err != "" {
		return false
	}
	switch protocol {
	case "leader", "coalescence", "gs18leader":
		return rec.Counts["L"] == 1
	case "exactmajority":
		return rec.Counts["A"] == int64(n)
	case "gsexactmajority", "aagmajority":
		return rec.Counts["TokB"] == 0 && rec.Counts["Out"] == int64(n)
	}
	return false
}

// runCompare is the -compare entry point.
func runCompare(out string, quick bool, workers int, baseSeed uint64) int {
	reg := serve.NewRegistry()
	cells, ns, seeds := compareGrid(quick)
	sec := compareSection{Quick: quick, Seeds: seeds, Grid: ns}
	table := stats.NewTable("Related-work head-to-head (gap 1 for majority)",
		"family", "protocol", "n", "states", "runner", "mean rounds", "p90 rounds", "mean interactions", "correct")

	begin := time.Now()
	for i, cell := range cells {
		spec := expt.JobSpec{
			Protocol: cell.protocol,
			N:        cell.n,
			Gap:      cell.gap,
			Replicas: seeds,
			// Distinct roots per cell keep replica streams independent
			// across the grid while staying a pure function of -seed.
			Seed: baseSeed + uint64(i+1)<<32,
		}
		p, err := reg.Normalize(&spec, 1<<21, 1<<12)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: compare cell %s/%d: %v\n", cell.protocol, cell.n, err)
			return 1
		}
		var recs []expt.ReplicaRecord
		start := time.Now()
		err = p.Run(context.Background(), spec, serve.RunOptions{Workers: workers},
			func(rec expt.ReplicaRecord) { recs = append(recs, rec) })
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: compare cell %s/%d: %v\n", cell.protocol, cell.n, err)
			return 1
		}
		row := compareRow{
			Family:   cell.family,
			Protocol: cell.protocol,
			N:        cell.n,
			Seeds:    seeds,
			Runner:   "framework",
			WallMS:   ms(wall),
		}
		if p.States != nil {
			row.States = p.States(cell.n)
		}
		var rounds []float64
		var interSum float64
		for _, rec := range recs {
			rounds = append(rounds, rec.Rounds)
			interSum += float64(rec.Interactions)
			if rec.Converged {
				row.Converged++
			}
			if compareCorrect(cell.protocol, cell.n, rec) {
				row.Correct++
			}
			if rec.Runner != "" {
				row.Runner = rec.Runner
			}
		}
		sum := stats.Summarize(rounds)
		row.MeanRounds = sum.Mean
		row.P90Rounds = sum.P90
		row.MeanInteractions = interSum / float64(len(recs))
		row.CorrectProb = float64(row.Correct) / float64(seeds)
		sec.Rows = append(sec.Rows, row)
		table.AddRow(row.Family, row.Protocol, row.N, fmt.Sprintf("%d", row.States), row.Runner,
			row.MeanRounds, row.P90Rounds, row.MeanInteractions,
			fmt.Sprintf("%d/%d", row.Correct, seeds))
		fmt.Fprintf(os.Stderr, "popbench: compare %-8s %-16s n=%-5d %d/%d correct, mean %.0f rounds (%.0fms)\n",
			cell.family, cell.protocol, cell.n, row.Correct, seeds, row.MeanRounds, row.WallMS)
	}
	sec.WallMS = ms(time.Since(begin))
	sec.Table = table
	fmt.Println(table.Markdown())

	if err := mergeSection(filepath.Join(out, "BENCH_results.json"), "compare", sec); err != nil {
		fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
		return 1
	}
	return 0
}
