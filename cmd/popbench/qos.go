package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"popkit/internal/expt"
	"popkit/internal/fleet"
	"popkit/internal/qos"
	"popkit/internal/serve"
)

// The -qos mode calibrates the admission-control cost model: it runs one
// representative workload per size class (interactive / batch / whale)
// through the same registry code popserved serves, compares the model's
// admission-time prediction against the measured per-replica wall clock,
// and records the error — plus the EWMA corrections the observations
// produced — under the "qos" key of BENCH_results.json. The numbers answer
// the operational question behind every 413/429 the server sends: how far
// off is the prediction that justified it?

// qosWorkloadResult is one workload's predicted-vs-actual entry.
type qosWorkloadResult struct {
	// Class is the size class the model assigned at admission time.
	Class    string `json:"class"`
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	Replicas int    `json:"replicas"`
	// Tier is the runner the model priced the job on.
	Tier string `json:"tier"`
	// Correction is the EWMA multiplier the prediction carried (1 = raw
	// grid; earlier workloads' observations move it, as in production).
	Correction             float64 `json:"correction"`
	PredictedReplicaMS     float64 `json:"predicted_replica_ms"`
	PredictedTotalMS       float64 `json:"predicted_total_ms"`
	ActualReplicaMeanMS    float64 `json:"actual_replica_mean_ms"`
	ActualReplicaSlowestMS float64 `json:"actual_replica_slowest_ms"`
	// ActualTotalMS sums the replica wall clocks — comparable to the
	// predicted total, which prices serial work (the fleet runs replicas in
	// parallel, so the job's wall clock is smaller).
	ActualTotalMS float64 `json:"actual_total_ms"`
	WallMS        float64 `json:"wall_ms"`
	// ErrorRatio is actual/predicted per-replica mean: 1 = perfect, >1 the
	// model under-priced, <1 over-priced.
	ErrorRatio float64 `json:"error_ratio"`
}

// qosSection is the "qos" block of BENCH_results.json.
type qosSection struct {
	Quick  bool    `json:"quick"`
	WallMS float64 `json:"wall_ms"`
	// MeanAbsLogError is the mean |log2(actual/predicted)| across workloads
	// — 0 means every prediction was exact, 1 means off by 2× on average.
	// DeriveDeadline's 8× slack tolerates up to 3 here before a
	// well-behaved job could be killed by its own derived deadline.
	MeanAbsLogError float64 `json:"mean_abs_log_error"`
	// Corrections are the per-tier EWMA multipliers after all observations
	// fed back — what a server that ran this mix would be predicting with.
	Corrections map[string]float64  `json:"corrections"`
	Workloads   []qosWorkloadResult `json:"workloads"`
	// Skipped lists workloads not run (whale under -quick).
	Skipped []string `json:"skipped,omitempty"`
}

// qosWorkloads returns the calibration mix, one or more specs per size
// class. The whale is genuinely whale-classed (≥ 30s predicted serial
// work), so -quick drops it to keep the mode fast.
func qosWorkloads(quick bool) (run []expt.JobSpec, skipped []string) {
	run = []expt.JobSpec{
		// Interactive: the cluster tests' spec — milliseconds of work.
		{Protocol: "exactmajority", N: 400, Seed: 7, Replicas: 12, Gap: 2},
		// Interactive: counted kernel in its leaping regime.
		{Protocol: "approxmajority", N: 100_000, Seed: 11, Replicas: 4, Gap: 10_000},
		// Batch: ~0.7s per replica × 4 on the raw grid.
		{Protocol: "approxmajority", N: 1_000_000, Seed: 13, Replicas: 4, Gap: 100_000},
		// Batch: coalescence's Θ(n) rounds make n=1e5 seconds of work.
		{Protocol: "coalescence", N: 100_000, Seed: 17, Replicas: 1},
	}
	whale := expt.JobSpec{Protocol: "approxmajority", N: 1_000_000, Seed: 19, Replicas: 48, Gap: 100_000}
	if quick {
		return run, []string{fmt.Sprintf("%s n=%d replicas=%d (whale; -quick)", whale.Protocol, whale.N, whale.Replicas)}
	}
	return append(run, whale), nil
}

// runQoS is the -qos entry point.
func runQoS(out string, quick bool, workers int, gridPath string) int {
	model, err := qos.NewModel(qos.ModelOptions{GridPath: gridPath})
	if err != nil {
		fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
		return 1
	}
	reg := serve.NewRegistry()
	specs, skipped := qosWorkloads(quick)
	sec := qosSection{Quick: quick, Skipped: skipped}

	// Price every workload off the raw grid BEFORE any run feeds the EWMA:
	// each entry then reports pure grid error and keeps its designed class,
	// instead of inheriting whatever correction the previous workload's
	// observations happened to leave behind. The corrections map at the end
	// still shows where the feedback loop converged.
	type pricedWorkload struct {
		spec expt.JobSpec
		p    *serve.Protocol
		pred qos.Prediction
	}
	priced := make([]pricedWorkload, 0, len(specs))
	for _, spec := range specs {
		p, err := reg.Normalize(&spec, math.MaxInt32, 1<<20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: qos workload %s/%d: %v\n", spec.Protocol, spec.N, err)
			return 1
		}
		priced = append(priced, pricedWorkload{spec: spec, p: p, pred: model.Predict(spec, p.Kind)})
	}

	begin := time.Now()
	var absLogSum float64
	for _, w := range priced {
		spec, p, pred := w.spec, w.p, w.pred

		var mu sync.Mutex
		var total, slowest time.Duration
		var count int
		observe := func(r fleet.Result) {
			model.Observe(pred, r.Elapsed)
			mu.Lock()
			total += r.Elapsed
			if r.Elapsed > slowest {
				slowest = r.Elapsed
			}
			count++
			mu.Unlock()
		}
		start := time.Now()
		err = p.Run(context.Background(), spec, serve.RunOptions{Workers: workers, Observe: observe},
			func(expt.ReplicaRecord) {})
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: qos workload %s/%d: %v\n", spec.Protocol, spec.N, err)
			return 1
		}
		if count == 0 {
			fmt.Fprintf(os.Stderr, "popbench: qos workload %s/%d ran no replicas\n", spec.Protocol, spec.N)
			return 1
		}
		mean := total / time.Duration(count)
		ratio := float64(mean) / float64(pred.PerReplica)
		absLogSum += math.Abs(math.Log2(ratio))
		res := qosWorkloadResult{
			Class:                  pred.Class.String(),
			Protocol:               spec.Protocol,
			N:                      spec.N,
			Replicas:               spec.Replicas,
			Tier:                   pred.Tier,
			Correction:             pred.Correction,
			PredictedReplicaMS:     ms(pred.PerReplica),
			PredictedTotalMS:       ms(pred.Total),
			ActualReplicaMeanMS:    ms(mean),
			ActualReplicaSlowestMS: ms(slowest),
			ActualTotalMS:          ms(total),
			WallMS:                 ms(wall),
			ErrorRatio:             ratio,
		}
		sec.Workloads = append(sec.Workloads, res)
		fmt.Printf("%-12s %-15s n=%-9d replicas=%-3d tier=%-9s predicted=%8.1fms/replica actual=%8.1fms/replica ratio=%.2f\n",
			pred.Class, spec.Protocol, spec.N, spec.Replicas, pred.Tier,
			res.PredictedReplicaMS, res.ActualReplicaMeanMS, ratio)
	}
	sec.WallMS = ms(time.Since(begin))
	sec.MeanAbsLogError = absLogSum / float64(len(sec.Workloads))
	sec.Corrections = model.Corrections()
	fmt.Printf("\nmean |log2(actual/predicted)| = %.3f (deadline slack tolerates 3.0)\n", sec.MeanAbsLogError)
	for tier, c := range sec.Corrections {
		fmt.Printf("correction[%s] = %.3f\n", tier, c)
	}

	if err := mergeSection(filepath.Join(out, "BENCH_results.json"), "qos", sec); err != nil {
		fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
		return 1
	}
	return 0
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// mergeSection writes one named block into BENCH_results.json, preserving
// an existing experiments document if one is present (the -qos and
// -compare modes must not clobber a prior full run — the modes share the
// file).
func mergeSection(path, key string, sec any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	doc := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("existing %s is not JSON (%v); refusing to overwrite", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc[key] = sec
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "popbench: wrote %s section into %s\n", key, path)
	return nil
}
