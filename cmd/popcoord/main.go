// Command popcoord is the cluster coordinator: it shards one simulation job
// across many popserved workers and merges the returning streams in replica
// order, so the cluster's NDJSON output is byte-identical to a single
// popserved running the same spec — for any worker count, any shard size,
// and across worker failures.
//
// Usage:
//
//	popcoord -workers URL[,URL...] [-addr HOST:PORT] [-shard-size N]
//	         [-probe-interval D] [-probe-timeout D] [-client-retries N]
//	         [-dispatch-retries N] [-journal DIR] [-job-timeout D]
//	         [-min-job-timeout D] [-cost-model FILE] [-cost-budget D]
//	         [-max-n N] [-max-replicas N] [-store DIR] [-store-max-bytes N]
//	         [-store-max-entries N] [-max-sweep-points N] [-drain D] [-v]
//
// Admission and deadlines mirror popserved's: each job's cost is predicted
// from the ns-per-interaction model, -cost-budget turns predictably hopeless
// jobs away with a structured 413, and the per-job deadline derives from the
// prediction (capped by -job-timeout when set). Every shard dispatch — and
// every re-dispatch after a worker death — carries the job's REMAINING
// deadline budget (X-Popkit-Deadline-Ms) plus the originating tenant
// (X-Popkit-Tenant), so workers inherit what is left rather than a fresh
// timeout and bill the right tenant lane.
//
// Workers are popserved instances reachable at the given base URLs; more
// can be registered at runtime with POST /v1/workers {"url": "..."}. The
// coordinator polls each worker's /healthz every -probe-interval and only
// dispatches shards to live workers. A worker that dies mid-shard (kill -9
// included) is marked down and its remaining replicas are re-dispatched to
// another worker, resuming exactly where the stream stopped.
//
// With -journal DIR, jobs that carry a job_id checkpoint every merged
// record to DIR/<job_id>.ndjson; re-POSTing the same (job_id, spec) after a
// coordinator crash replays the journaled prefix and dispatches only the
// rest — the same resume contract popserved offers on a single node.
//
// With -store DIR, completed cacheable jobs are committed to a coordinator-
// side content-addressed result store and repeat POSTs stream the stored
// bytes back without dispatching a single shard (X-Popkit-Cache: hit) —
// a cached job is served even with zero live workers. The store also backs
// POST /v1/sweep, which runs only the uncached grid points on the fleet.
//
// Endpoints:
//
//	POST /v1/jobs       run a job sharded across the cluster, stream NDJSON
//	POST /v1/simulate   alias for /v1/jobs (drop-in for a single popserved)
//	POST /v1/sweep      expand a parameter grid, dedupe against the result
//	                    store and in-flight jobs, stream one manifest line
//	                    per point plus a summary
//	GET  /v1/workers    list registered workers and their health
//	POST /v1/workers    register a worker: {"url": "http://host:port"}
//	GET  /v1/protocols  list runnable protocols
//	GET  /healthz       coordinator liveness + live-worker count
//	GET  /metrics       JSON counters (cluster size, shards, per-worker
//	                    latency); ?format=prom for Prometheus text
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops and in-flight
// jobs drain under the -drain deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"popkit/internal/cluster"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr            = flag.String("addr", "127.0.0.1:8090", "listen address (host:port; port 0 picks a free port)")
		workers         = flag.String("workers", "", "comma-separated popserved base URLs (e.g. http://127.0.0.1:8080)")
		shardSize       = flag.Int("shard-size", 0, "max replicas per shard (0 = auto: ~2 shards per live worker)")
		probeInterval   = flag.Duration("probe-interval", time.Second, "worker health-check period")
		probeTimeout    = flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe timeout")
		clientRetries   = flag.Int("client-retries", 2, "streaming-client retries per dispatch before failing over")
		dispatchRetries = flag.Int("dispatch-retries", 4, "consecutive no-progress dispatches before a shard fails")
		journalDir      = flag.String("journal", "", "directory for job_id checkpoint journals (empty disables resume)")
		jobTimeout      = flag.Duration("job-timeout", 0, "per-job wall-clock cap (0 = derive per job from the cost model, capped at 15m; an explicit value caps the derived deadline)")
		minJobTimeout   = flag.Duration("min-job-timeout", 0, "floor of the derived per-job deadline (0 → 10s)")
		costModel       = flag.String("cost-model", "", "JSON ns-per-interaction grid overriding the baked-in cost model (popbench output)")
		costBudget      = flag.Duration("cost-budget", 0, "reject jobs whose predicted cost exceeds this with 413 (0 = no budget)")
		maxN            = flag.Int("max-n", 5_000_000, "largest accepted population size (must not exceed the workers' cap)")
		maxReplicas     = flag.Int("max-replicas", 1024, "largest accepted replica count (must not exceed the workers' cap)")
		storeDir        = flag.String("store", "", "directory for the content-addressed result store (empty disables caching)")
		storeMaxBytes   = flag.Int64("store-max-bytes", 0, "store size cap in bytes before LRU eviction (0 → 256 MiB, negative → unlimited)")
		storeMaxEnts    = flag.Int("store-max-entries", 0, "store entry cap before LRU eviction (0 → 4096)")
		maxSweepPoints  = flag.Int("max-sweep-points", 0, "largest accepted sweep grid expansion (0 → 1024)")
		drain           = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline")
		verbose         = flag.Bool("v", false, "log dispatch failures and worker transitions to stderr")
	)
	flag.Parse()
	if *shardSize < 0 || *clientRetries < 0 || *dispatchRetries < 1 || *maxN < 2 || *maxReplicas < 1 {
		fmt.Fprintln(os.Stderr, "popcoord: -shard-size and -client-retries must be ≥ 0, -dispatch-retries and -max-replicas ≥ 1, -max-n ≥ 2")
		return 2
	}

	cfg := cluster.Config{
		ShardSize:       *shardSize,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		ClientRetries:   *clientRetries,
		DispatchRetries: *dispatchRetries,
		JournalDir:      *journalDir,
		JobTimeout:      *jobTimeout,
		MinJobTimeout:   *minJobTimeout,
		CostModelPath:   *costModel,
		CostBudget:      *costBudget,
		MaxN:            *maxN,
		MaxReplicas:     *maxReplicas,
		StoreDir:        *storeDir,
		StoreMaxBytes:   *storeMaxBytes,
		StoreMaxEntries: *storeMaxEnts,
		MaxSweepPoints:  *maxSweepPoints,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			cfg.Workers = append(cfg.Workers, u)
		}
	}

	coord, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popcoord: %v\n", err)
		return 2
	}
	coord.Start()
	defer coord.Stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popcoord: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: coord.Handler()}

	// The scripts parse this line to discover the bound port.
	_, live := workerCounts(coord)
	fmt.Fprintf(os.Stderr, "popcoord: listening on http://%s (workers=%d live=%d)\n",
		ln.Addr(), len(cfg.Workers), live)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "popcoord: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal behaviour: a second ^C kills us

	fmt.Fprintf(os.Stderr, "popcoord: shutting down, draining in-flight jobs (deadline %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "popcoord: drain deadline exceeded: %v\n", err)
		hs.Close()
		code = 1
	}
	fmt.Fprintln(os.Stderr, "popcoord: drained, bye")
	return code
}

// workerCounts samples (registered, live) from the coordinator's view.
func workerCounts(c *cluster.Coordinator) (total, live int) {
	for _, w := range c.Workers() {
		total++
		if w.Live {
			live++
		}
	}
	return total, live
}
