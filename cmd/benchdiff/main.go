// Command benchdiff compares two `go test -bench` output files in the style
// of benchstat, using only the standard library (the container bakes no
// external tooling). scripts/benchdiff.sh drives it to diff the working
// tree's kernel benchmarks against a baseline git ref.
//
// Usage:
//
//	benchdiff [-threshold PCT] [-fail-over PCT] old.txt new.txt
//
// Each input is the stdout of `go test -bench ... [-count N]`. Samples of
// the same benchmark are aggregated by median (robust to the odd noisy
// run); the report shows old, new, spread, and delta per metric. With
// -threshold > 0 the exit code is 1 if any time metric (ns/op, or the
// kernel benchmarks' custom ns/interaction) regressed by more than that
// percentage — the CI-gate mode. -fail-over is the CI-facing
// spelling of the same gate; when both are given the stricter (smaller)
// percentage wins.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sampleSet holds all samples of one (benchmark, unit) pair.
type sampleSet map[string]map[string][]float64 // name → unit → samples

// parseBench reads `go test -bench` output. Benchmark lines look like:
//
//	BenchmarkCountStep-8   9573058   114.9 ns/op   16 B/op   1 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so runs from different machines
// still line up.
func parseBench(path string) (sampleSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := sampleSet{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			if out[name] == nil {
				out[name] = map[string][]float64{}
			}
			out[name][unit] = append(out[name][unit], v)
		}
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// spread reports the half-range around the median as a percentage — a
// poor man's confidence interval that needs no distribution assumptions.
func spread(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := median(s)
	if m == 0 {
		return 0
	}
	return (s[len(s)-1] - s[0]) / 2 / m * 100
}

// timeUnit reports whether a metric unit is one the -threshold gate
// covers: the standard ns/op plus the kernel benchmarks' per-activation
// ns/interaction (see bench_kernel_test.go). Allocation metrics stay
// report-only — alloc deltas are intentional far more often than time
// deltas, and the kernel gate is about latency.
func timeUnit(u string) bool {
	return u == "ns/op" || u == "ns/interaction"
}

func main() {
	threshold := flag.Float64("threshold", 0, "exit 1 if any ns/op or ns/interaction metric regresses by more than this percent (0 = report only)")
	failOver := flag.Float64("fail-over", 0, "CI-gate alias of -threshold; the stricter of the two wins")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] [-fail-over PCT] old.txt new.txt")
		os.Exit(2)
	}
	if *failOver < 0 || *threshold < 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -threshold and -fail-over must be ≥ 0")
		os.Exit(2)
	}
	if *failOver > 0 && (*threshold == 0 || *failOver < *threshold) {
		*threshold = *failOver
	}
	old, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	cur, err := parseBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	units := map[string]bool{}
	names := map[string]bool{}
	for n, m := range old {
		names[n] = true
		for u := range m {
			units[u] = true
		}
	}
	for n, m := range cur {
		names[n] = true
		for u := range m {
			units[u] = true
		}
	}
	unitOrder := make([]string, 0, len(units))
	for u := range units {
		unitOrder = append(unitOrder, u)
	}
	// Gated time metrics first, then the allocation metrics alphabetically.
	sort.Slice(unitOrder, func(i, j int) bool {
		if timeUnit(unitOrder[i]) != timeUnit(unitOrder[j]) {
			return timeUnit(unitOrder[i])
		}
		return unitOrder[i] < unitOrder[j]
	})
	nameOrder := make([]string, 0, len(names))
	for n := range names {
		nameOrder = append(nameOrder, n)
	}
	sort.Strings(nameOrder)

	regressed := false
	for _, u := range unitOrder {
		rows := [][4]string{}
		for _, n := range nameOrder {
			o, haveOld := old[n][u]
			c, haveNew := cur[n][u]
			if !haveOld && !haveNew {
				continue
			}
			row := [4]string{n, "—", "—", "—"}
			if haveOld {
				row[1] = fmt.Sprintf("%.2f ±%2.0f%%", median(o), spread(o))
			}
			if haveNew {
				row[2] = fmt.Sprintf("%.2f ±%2.0f%%", median(c), spread(c))
			}
			if haveOld && haveNew && median(o) != 0 {
				delta := (median(c) - median(o)) / median(o) * 100
				row[3] = fmt.Sprintf("%+.1f%%", delta)
				if timeUnit(u) && *threshold > 0 && delta > *threshold {
					regressed = true
					row[3] += " !"
				}
			}
			rows = append(rows, row)
		}
		if len(rows) == 0 {
			continue
		}
		fmt.Printf("%-36s %20s %20s %10s\n", u, "old", "new", "delta")
		for _, r := range rows {
			fmt.Printf("%-36s %20s %20s %10s\n", r[0], r[1], r[2], r[3])
		}
		fmt.Println()
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: ns/op or ns/interaction regression beyond %.1f%%\n", *threshold)
		os.Exit(1)
	}
}
