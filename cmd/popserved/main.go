// Command popserved serves population-protocol simulation jobs over HTTP:
// clients POST a job spec (protocol, n, seed, replicas, parameters) and
// receive the per-replica results streamed back as NDJSON while a worker
// pool computes them on the replica fleet.
//
// Usage:
//
//	popserved [-addr HOST:PORT] [-queue N] [-workers N] [-fleet-workers N]
//	          [-job-timeout D] [-min-job-timeout D] [-drain D] [-max-n N]
//	          [-max-replicas N] [-journal DIR] [-retries N] [-store DIR]
//	          [-store-max-bytes N] [-store-max-entries N] [-max-sweep-points N]
//	          [-cost-model FILE] [-cost-budget D] [-tenant-weights T=W,...]
//	          [-max-tenants N] [-whale-per-tenant N] [-whale-global N]
//	          [-failpoints SPEC] [-list-failpoints]
//
// Admission control and QoS: every job's cost is predicted from a
// ns-per-interaction model before it enters the queue. Requests carry an
// optional X-Popkit-Tenant header; queued jobs are dispatched by per-tenant
// deficit-round-robin (weights via -tenant-weights) with strict priority of
// interactive over batch over whale size classes, so small jobs never wait
// behind huge ones. -cost-budget rejects predictably hopeless jobs with a
// structured 413; per-job deadlines derive from the prediction unless
// -job-timeout pins a cap. Scheduling never changes output bytes.
//
// With -journal DIR, jobs that carry a job_id checkpoint each completed
// replica to DIR/<job_id>.ndjson; re-POSTing the same (job_id, spec) —
// e.g. after a crash of either side — replays the journaled prefix and
// computes only the rest, byte-identical to an uninterrupted run.
//
// -retries re-runs replicas that panic (or hit an injected fault) from
// their own deterministic seed. -failpoints enables named fault-injection
// points (also via POPKIT_FAILPOINTS); -list-failpoints prints the
// registry and exits.
//
// With -store DIR, completed cacheable jobs are committed to a
// content-addressed result store under DIR and repeat POSTs of the same
// normalized spec stream the stored bytes back without touching the worker
// pool (X-Popkit-Cache: hit). The store also backs POST /v1/sweep, which
// expands a parameter grid server-side and runs only the uncached points.
//
// Endpoints:
//
//	POST /v1/simulate   run a job, stream NDJSON records (429 when the
//	                    queue is full, 503 while draining; client
//	                    disconnect cancels the job)
//	POST /v1/sweep      expand a parameter grid, dedupe against the result
//	                    store and in-flight jobs, stream one manifest line
//	                    per point plus a summary
//	GET  /v1/protocols  list runnable protocols
//	GET  /healthz       cheap liveness + queue depth; bypasses the job
//	                    queue entirely, and reports "draining" with 503
//	                    once shutdown begins (cluster health probes)
//	GET  /metrics       JSON counters and latency histograms
//	GET  /metrics?format=prom   the same registry in Prometheus text format
//	GET  /debug/pprof/  runtime profiles (only with -pprof)
//
// Determinism survives the network boundary: the same (protocol, n, seed,
// replicas) spec returns byte-identical records to `popsim -ndjson`, which
// runs the same registry code in-process.
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops, in-flight jobs
// drain under the -drain deadline, then stragglers are aborted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"popkit/internal/fault"
	"popkit/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr           = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		queue          = flag.Int("queue", 64, "job queue depth (full queue rejects with 429)")
		workers        = flag.Int("workers", runtime.GOMAXPROCS(0), "jobs executing concurrently")
		fleetWorkers   = flag.Int("fleet-workers", 1, "replica-fleet width per job (does not change results)")
		jobTimeout     = flag.Duration("job-timeout", 0, "per-job wall-clock cap (0 = derive per job from the cost model, capped at 15m; an explicit value caps the derived deadline)")
		minJobTimeout  = flag.Duration("min-job-timeout", 0, "floor of the derived per-job deadline (0 → 10s)")
		costModel      = flag.String("cost-model", "", "JSON ns-per-interaction grid overriding the baked-in cost model (popbench output)")
		costBudget     = flag.Duration("cost-budget", 0, "reject jobs whose predicted cost exceeds this with 413 (0 = no budget)")
		tenantWeights  = flag.String("tenant-weights", "", "comma-separated tenant=weight pairs for fair queueing, e.g. 'ci=1,research=4' (unlisted tenants weigh 1)")
		maxTenants     = flag.Int("max-tenants", 0, "max distinct tenants with queued jobs before new tenants get 429 (0 → 64)")
		whalePerTenant = flag.Int("whale-per-tenant", 0, "concurrently running whale-class jobs per tenant (0 → 1)")
		whaleGlobal    = flag.Int("whale-global", 0, "concurrently running whale-class jobs overall (0 → workers−1, min 1)")
		drain          = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline")
		maxN           = flag.Int("max-n", 5_000_000, "largest accepted population size")
		maxReplicas    = flag.Int("max-replicas", 1024, "largest accepted replica count")
		journalDir     = flag.String("journal", "", "directory for job_id checkpoint journals (empty disables resume)")
		retries        = flag.Int("retries", 2, "re-runs per crashed replica before its failure reaches the stream")
		storeDir       = flag.String("store", "", "directory for the content-addressed result store (empty disables caching)")
		storeMaxBytes  = flag.Int64("store-max-bytes", 0, "store size cap in bytes before LRU eviction (0 → 256 MiB, negative → unlimited)")
		storeMaxEnts   = flag.Int("store-max-entries", 0, "store entry cap before LRU eviction (0 → 4096)")
		maxSweepPoints = flag.Int("max-sweep-points", 0, "largest accepted sweep grid expansion (0 → 1024)")
		pprofFlag      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiling; off by default)")
		failpoints     = flag.String("failpoints", "", "enable failpoints, e.g. 'serve/stream=panic(after=2,times=1)' (also: POPKIT_FAILPOINTS)")
		listFailpoints = flag.Bool("list-failpoints", false, "print the failpoint registry and exit")
	)
	flag.Parse()
	if *listFailpoints {
		for _, info := range fault.List() {
			fmt.Printf("%-16s %s\n", info.Name, info.Doc)
		}
		return 0
	}
	if *queue < 1 || *workers < 1 || *fleetWorkers < 1 || *maxN < 2 || *maxReplicas < 1 || *retries < 0 ||
		*maxTenants < 0 || *whalePerTenant < 0 || *whaleGlobal < 0 || *jobTimeout < 0 || *minJobTimeout < 0 || *costBudget < 0 {
		fmt.Fprintln(os.Stderr, "popserved: -queue, -workers, -fleet-workers, -max-replicas must be ≥ 1, -max-n ≥ 2, everything else ≥ 0")
		return 2
	}
	if err := fault.EnableFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "popserved: %v\n", err)
		return 2
	}
	if *failpoints != "" {
		if err := fault.Enable(*failpoints); err != nil {
			fmt.Fprintf(os.Stderr, "popserved: %v\n", err)
			return 2
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popserved: %v\n", err)
		return 1
	}
	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popserved: %v\n", err)
		return 2
	}
	srv, err := serve.New(serve.Config{
		QueueDepth:      *queue,
		Workers:         *workers,
		FleetWorkers:    *fleetWorkers,
		MaxRetries:      *retries,
		JournalDir:      *journalDir,
		JobTimeout:      *jobTimeout,
		MinJobTimeout:   *minJobTimeout,
		CostModelPath:   *costModel,
		CostBudget:      *costBudget,
		TenantWeights:   weights,
		MaxTenants:      *maxTenants,
		WhalePerTenant:  *whalePerTenant,
		WhaleGlobal:     *whaleGlobal,
		MaxN:            *maxN,
		MaxReplicas:     *maxReplicas,
		EnablePprof:     *pprofFlag,
		StoreDir:        *storeDir,
		StoreMaxBytes:   *storeMaxBytes,
		StoreMaxEntries: *storeMaxEnts,
		MaxSweepPoints:  *maxSweepPoints,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "popserved: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}

	// The scripts parse this line to discover the bound port.
	fmt.Fprintf(os.Stderr, "popserved: listening on http://%s (workers=%d queue=%d)\n",
		ln.Addr(), *workers, *queue)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "popserved: %v\n", err)
		srv.Abort()
		srv.Close()
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal behaviour: a second ^C kills us

	// Flip to draining before the listener closes: while the drain runs,
	// new simulate requests get a retryable 503 + Retry-After and /healthz
	// answers "draining", so cluster coordinators stop routing shards here
	// and fail over instead of erroring.
	srv.SetDraining(true)
	fmt.Fprintf(os.Stderr, "popserved: shutting down, draining in-flight jobs (deadline %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "popserved: drain deadline exceeded, aborting in-flight jobs: %v\n", err)
		srv.Abort()
		hs.Close()
		code = 1
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "popserved: drained, bye")
	return code
}

// parseTenantWeights parses "a=3,b=1" into the fair-queueing weight map.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if !ok || name == "" || err != nil || w < 1 {
			return nil, fmt.Errorf("bad -tenant-weights entry %q: want tenant=weight with weight ≥ 1", pair)
		}
		out[strings.TrimSpace(name)] = w
	}
	return out, nil
}
