// Command popserved serves population-protocol simulation jobs over HTTP:
// clients POST a job spec (protocol, n, seed, replicas, parameters) and
// receive the per-replica results streamed back as NDJSON while a worker
// pool computes them on the replica fleet.
//
// Usage:
//
//	popserved [-addr HOST:PORT] [-queue N] [-workers N] [-fleet-workers N]
//	          [-job-timeout D] [-drain D] [-max-n N] [-max-replicas N]
//	          [-journal DIR] [-retries N] [-store DIR] [-store-max-bytes N]
//	          [-store-max-entries N] [-max-sweep-points N]
//	          [-failpoints SPEC] [-list-failpoints]
//
// With -journal DIR, jobs that carry a job_id checkpoint each completed
// replica to DIR/<job_id>.ndjson; re-POSTing the same (job_id, spec) —
// e.g. after a crash of either side — replays the journaled prefix and
// computes only the rest, byte-identical to an uninterrupted run.
//
// -retries re-runs replicas that panic (or hit an injected fault) from
// their own deterministic seed. -failpoints enables named fault-injection
// points (also via POPKIT_FAILPOINTS); -list-failpoints prints the
// registry and exits.
//
// With -store DIR, completed cacheable jobs are committed to a
// content-addressed result store under DIR and repeat POSTs of the same
// normalized spec stream the stored bytes back without touching the worker
// pool (X-Popkit-Cache: hit). The store also backs POST /v1/sweep, which
// expands a parameter grid server-side and runs only the uncached points.
//
// Endpoints:
//
//	POST /v1/simulate   run a job, stream NDJSON records (429 when the
//	                    queue is full, 503 while draining; client
//	                    disconnect cancels the job)
//	POST /v1/sweep      expand a parameter grid, dedupe against the result
//	                    store and in-flight jobs, stream one manifest line
//	                    per point plus a summary
//	GET  /v1/protocols  list runnable protocols
//	GET  /healthz       cheap liveness + queue depth; bypasses the job
//	                    queue entirely, and reports "draining" with 503
//	                    once shutdown begins (cluster health probes)
//	GET  /metrics       JSON counters and latency histograms
//	GET  /metrics?format=prom   the same registry in Prometheus text format
//	GET  /debug/pprof/  runtime profiles (only with -pprof)
//
// Determinism survives the network boundary: the same (protocol, n, seed,
// replicas) spec returns byte-identical records to `popsim -ndjson`, which
// runs the same registry code in-process.
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops, in-flight jobs
// drain under the -drain deadline, then stragglers are aborted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"popkit/internal/fault"
	"popkit/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr           = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		queue          = flag.Int("queue", 64, "job queue depth (full queue rejects with 429)")
		workers        = flag.Int("workers", runtime.GOMAXPROCS(0), "jobs executing concurrently")
		fleetWorkers   = flag.Int("fleet-workers", 1, "replica-fleet width per job (does not change results)")
		jobTimeout     = flag.Duration("job-timeout", 60*time.Second, "per-job wall-clock budget")
		drain          = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline")
		maxN           = flag.Int("max-n", 5_000_000, "largest accepted population size")
		maxReplicas    = flag.Int("max-replicas", 1024, "largest accepted replica count")
		journalDir     = flag.String("journal", "", "directory for job_id checkpoint journals (empty disables resume)")
		retries        = flag.Int("retries", 2, "re-runs per crashed replica before its failure reaches the stream")
		storeDir       = flag.String("store", "", "directory for the content-addressed result store (empty disables caching)")
		storeMaxBytes  = flag.Int64("store-max-bytes", 0, "store size cap in bytes before LRU eviction (0 → 256 MiB, negative → unlimited)")
		storeMaxEnts   = flag.Int("store-max-entries", 0, "store entry cap before LRU eviction (0 → 4096)")
		maxSweepPoints = flag.Int("max-sweep-points", 0, "largest accepted sweep grid expansion (0 → 1024)")
		pprofFlag      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiling; off by default)")
		failpoints     = flag.String("failpoints", "", "enable failpoints, e.g. 'serve/stream=panic(after=2,times=1)' (also: POPKIT_FAILPOINTS)")
		listFailpoints = flag.Bool("list-failpoints", false, "print the failpoint registry and exit")
	)
	flag.Parse()
	if *listFailpoints {
		for _, info := range fault.List() {
			fmt.Printf("%-16s %s\n", info.Name, info.Doc)
		}
		return 0
	}
	if *queue < 1 || *workers < 1 || *fleetWorkers < 1 || *maxN < 2 || *maxReplicas < 1 || *retries < 0 {
		fmt.Fprintln(os.Stderr, "popserved: -queue, -workers, -fleet-workers, -max-replicas must be ≥ 1, -max-n ≥ 2, -retries ≥ 0")
		return 2
	}
	if err := fault.EnableFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "popserved: %v\n", err)
		return 2
	}
	if *failpoints != "" {
		if err := fault.Enable(*failpoints); err != nil {
			fmt.Fprintf(os.Stderr, "popserved: %v\n", err)
			return 2
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popserved: %v\n", err)
		return 1
	}
	srv, err := serve.New(serve.Config{
		QueueDepth:      *queue,
		Workers:         *workers,
		FleetWorkers:    *fleetWorkers,
		MaxRetries:      *retries,
		JournalDir:      *journalDir,
		JobTimeout:      *jobTimeout,
		MaxN:            *maxN,
		MaxReplicas:     *maxReplicas,
		EnablePprof:     *pprofFlag,
		StoreDir:        *storeDir,
		StoreMaxBytes:   *storeMaxBytes,
		StoreMaxEntries: *storeMaxEnts,
		MaxSweepPoints:  *maxSweepPoints,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "popserved: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}

	// The scripts parse this line to discover the bound port.
	fmt.Fprintf(os.Stderr, "popserved: listening on http://%s (workers=%d queue=%d)\n",
		ln.Addr(), *workers, *queue)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "popserved: %v\n", err)
		srv.Abort()
		srv.Close()
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal behaviour: a second ^C kills us

	// Flip to draining before the listener closes: while the drain runs,
	// new simulate requests get a retryable 503 + Retry-After and /healthz
	// answers "draining", so cluster coordinators stop routing shards here
	// and fail over instead of erroring.
	srv.SetDraining(true)
	fmt.Fprintf(os.Stderr, "popserved: shutting down, draining in-flight jobs (deadline %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "popserved: drain deadline exceeded, aborting in-flight jobs: %v\n", err)
		srv.Abort()
		hs.Close()
		code = 1
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "popserved: drained, bye")
	return code
}
