// Command popc compiles a program of the paper's imperative language into
// a flat population protocol and prints the result: the compilation
// geometry (tree depth, width, clock module), the time-path mapping of
// every emitted leaf, and — with -rules — the full rule listing.
//
// Usage:
//
//	popc file.pop            # compile a program source file
//	popc -builtin majority   # compile a bundled protocol
//	popc -builtin leader -rules
package main

import (
	"flag"
	"fmt"
	"os"

	popkit "popkit"
)

func main() {
	var (
		builtin  = flag.String("builtin", "", "bundled program: leader | leaderexact | majority | majorityexact | plurality3")
		showRule = flag.Bool("rules", false, "print the emitted rule listing")
		control  = flag.String("control", "twomeet", "X control: twomeet | cascade | prereduced")
	)
	flag.Parse()

	var prog *popkit.Program
	switch {
	case *builtin != "":
		switch *builtin {
		case "leader":
			prog = popkit.LeaderElection()
		case "leaderexact":
			prog = popkit.LeaderElectionExact()
		case "majority":
			prog = popkit.Majority(2)
		case "majorityexact":
			prog = popkit.MajorityExact(2)
		case "plurality3":
			prog = popkit.Plurality(3, 2)
		default:
			fmt.Fprintf(os.Stderr, "popc: unknown builtin %q\n", *builtin)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "popc:", err)
			os.Exit(1)
		}
		prog, err = popkit.ParseProgram(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "popc:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: popc [-builtin NAME | FILE] [-rules] [-control MODE]")
		os.Exit(2)
	}

	opts := popkit.CompileOptions{}
	switch *control {
	case "twomeet":
		opts.Control = popkit.XTwoMeet
	case "cascade":
		opts.Control = popkit.XCascade
	case "prereduced":
		opts.Control = popkit.XPreReduced
	default:
		fmt.Fprintf(os.Stderr, "popc: unknown control %q\n", *control)
		os.Exit(1)
	}

	c, err := popkit.CompileProgram(prog, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popc:", err)
		os.Exit(1)
	}
	fmt.Println(c.Describe())
	fmt.Println("\nleaf time paths (outermost level first, child index → clock phase 4·index):")
	for i, w := range c.LeafWindows {
		fmt.Printf("  leaf %2d: τ = %v\n", i, w)
	}
	if *showRule {
		fmt.Println("\nrules:")
		fmt.Println(c.Rules.String())
	}
}
