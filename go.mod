module popkit

go 1.22
