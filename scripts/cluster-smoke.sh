#!/usr/bin/env bash
# Cluster smoke: popcoord fronting two popserved workers must stream output
# byte-identical to a single worker running the same spec — including when
# one worker is kill -9'd mid-shard and the coordinator fails its replicas
# over to the survivor. Used by `make cluster-smoke` and scripts/check.sh.
#
#   1. ground truth: the spec through one popserved, no cluster
#   2. boot worker A (healthy) and worker B (stream failpoint: 300ms per
#      record, so its shards are reliably in flight when we shoot it)
#   3. boot popcoord over both, check registration and cluster health
#   4. POST the job, kill -9 worker B mid-stream, and cmp the merged
#      NDJSON against the single-node bytes
#   5. the re-dispatch must show up in the coordinator's metrics
set -euo pipefail
cd "$(dirname "$0")/.."

command -v curl >/dev/null || { echo "cluster-smoke: curl required" >&2; exit 2; }

tmp=$(mktemp -d)
pids=()
trap 'kill -9 ${pids[@]+"${pids[@]}"} 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/popserved" ./cmd/popserved
go build -o "$tmp/popcoord" ./cmd/popcoord

# start LOG CMD... — boots CMD, waits for its "listening on" line, and sets
# $base (the announced URL) and $last_pid.
start() {
    local log=$1; shift
    "$@" 2> "$log" &
    last_pid=$!
    disown "$last_pid" # keep bash from reporting the later kill -9
    pids+=("$last_pid")
    base=""
    for _ in $(seq 1 200); do
        base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$log" | head -n 1)
        [ -n "$base" ] && break
        sleep 0.05
    done
    [ -n "$base" ] || { echo "cluster-smoke: $1 never announced its port" >&2; cat "$log" >&2; exit 1; }
}

spec='{"protocol":"exactmajority","n":2000,"seed":42,"replicas":12,"gap":2}'

start "$tmp/solo.log" "$tmp/popserved" -addr 127.0.0.1:0
curl -fsS -d "$spec" "$base/v1/simulate" > "$tmp/want.ndjson"
[ "$(wc -l < "$tmp/want.ndjson")" -eq 12 ] \
    || { echo "cluster-smoke: bad single-node ground truth" >&2; cat "$tmp/want.ndjson" >&2; exit 1; }

start "$tmp/w1.log" "$tmp/popserved" -addr 127.0.0.1:0
w1=$base
start "$tmp/w2.log" "$tmp/popserved" -addr 127.0.0.1:0 \
    -failpoints 'serve/stream=sleep(d=300ms)'
w2=$base w2_pid=$last_pid

start "$tmp/coord.log" "$tmp/popcoord" -addr 127.0.0.1:0 -workers "$w1,$w2" \
    -shard-size 3 -client-retries 0 -probe-interval 200ms -v
coord=$base

curl -fsS "$coord/healthz" | grep -q '"workers_live":2' \
    || { echo "cluster-smoke: cluster health does not show 2 live workers" >&2; exit 1; }
curl -fsS "$coord/v1/workers" | grep -qF "$w2" \
    || { echo "cluster-smoke: worker listing is missing $w2" >&2; exit 1; }

# While worker B is crawling through its shard, its /healthz must still
# answer instantly — liveness bypasses the job pipeline entirely.
curl -fsS -d "$spec" "$coord/v1/jobs" > "$tmp/got.ndjson" &
curl_pid=$!
sleep 0.7
curl -fsS --max-time 2 "$w2/healthz" | grep -q '"status":"ok"' \
    || { echo "cluster-smoke: busy worker's /healthz did not answer" >&2; exit 1; }

kill -9 "$w2_pid"
wait "$curl_pid" \
    || { echo "cluster-smoke: job failed after worker kill" >&2; cat "$tmp/coord.log" >&2; exit 1; }

cmp "$tmp/want.ndjson" "$tmp/got.ndjson" || {
    echo "cluster-smoke: merged cluster output differs from single-node bytes" >&2
    diff "$tmp/want.ndjson" "$tmp/got.ndjson" >&2 || true
    cat "$tmp/coord.log" >&2
    exit 1
}

curl -fsS "$coord/metrics" | grep -Eq '"shards_redispatched": [1-9]' || {
    echo "cluster-smoke: no shard was re-dispatched — worker B died too late to matter" >&2
    cat "$tmp/coord.log" >&2
    exit 1
}

echo "cluster-smoke: OK (12 replicas byte-identical across worker kill -9)"
