#!/usr/bin/env bash
# Load-test popserved end to end:
#
#   scripts/loadtest.sh [CONCURRENCY]
#
#   1. liveness + protocol listing
#   2. CONCURRENCY (default 32) concurrent POST /v1/simulate requests, every
#      response validated as complete, converged NDJSON
#   3. metrics sanity: jobs_accepted covers the burst, nothing failed
#   4. queue backpressure: a 1-worker/1-slot server under long jobs answers
#      429 with a computed integer Retry-After, and honoring the hint
#      eventually gets a job accepted
#   5. determinism across the network boundary: a fixed-seed HTTP stream is
#      byte-identical to `popsim -ndjson` with the same spec
#   6. graceful drain: SIGTERM with a stream in flight still completes it
#   7. hot cache: CONCURRENCY identical POSTs against a store-backed server
#      collapse to exactly one fleet execution (single-flight + store hits),
#      every response byte-identical
#   8. mixed tenants: while one tenant floods the whale lane, another
#      tenant's burst of interactive jobs sees zero 429s and every stream
#      completes — fair queueing plus the whale concurrency cap in one shot
#
# Needs curl and jq (both available in the dev container).
set -euo pipefail
cd "$(dirname "$0")/.."

CONC="${1:-32}"
command -v curl >/dev/null || { echo "loadtest: curl required" >&2; exit 2; }
command -v jq   >/dev/null || { echo "loadtest: jq required" >&2; exit 2; }

tmp=$(mktemp -d)
srv_pid=""
trap 'kill "$srv_pid" 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$tmp"' EXIT

echo "== build =="
go build -o "$tmp/popserved" ./cmd/popserved
go build -o "$tmp/popsim" ./cmd/popsim

# start_server LOGFILE [flags...] — boots popserved on a free port and sets
# $srv_pid and $base from the "listening on" line.
start_server() {
    local log=$1; shift
    "$tmp/popserved" -addr 127.0.0.1:0 "$@" 2> "$log" &
    srv_pid=$!
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$log" | head -n 1)
        [ -n "$base" ] && break
        sleep 0.05
    done
    [ -n "$base" ] || { echo "loadtest: popserved did not announce its port" >&2; cat "$log" >&2; exit 1; }
}

stop_server() {
    kill -TERM "$srv_pid" 2>/dev/null || true
    wait "$srv_pid" 2>/dev/null || true
    srv_pid=""
}

echo "== phase 1: liveness =="
start_server "$tmp/main.log"
curl -fsS "$base/healthz" | jq -e '.status == "ok"' >/dev/null
curl -fsS "$base/v1/protocols" | jq -e '.protocols | length >= 8' >/dev/null

echo "== phase 2: $CONC concurrent streams =="
pids=()
for i in $(seq 1 "$CONC"); do
    curl -fsS --max-time 60 \
        -d "{\"protocol\":\"exactmajority\",\"n\":2000,\"seed\":$i,\"replicas\":2,\"gap\":1}" \
        "$base/v1/simulate" > "$tmp/stream.$i" &
    pids+=($!)
done
fail=0
for p in "${pids[@]}"; do wait "$p" || fail=1; done
[ "$fail" -eq 0 ] || { echo "loadtest: a concurrent request failed" >&2; exit 1; }
for i in $(seq 1 "$CONC"); do
    jq -es 'length == 2 and all(.converged and .err == null)' "$tmp/stream.$i" >/dev/null \
        || { echo "loadtest: stream $i invalid" >&2; cat "$tmp/stream.$i" >&2; exit 1; }
done
echo "   all $CONC streams complete and converged"

echo "== phase 3: metrics =="
curl -fsS "$base/metrics" > "$tmp/metrics.json"
jq -e --argjson c "$CONC" \
    '.jobs_accepted >= $c and .jobs_completed >= $c and .jobs_failed == 0 and .interactions_total > 0' \
    "$tmp/metrics.json" >/dev/null \
    || { echo "loadtest: metrics inconsistent" >&2; cat "$tmp/metrics.json" >&2; exit 1; }
stop_server

echo "== phase 4: queue backpressure (1 worker, 1 slot) =="
start_server "$tmp/full.log" -workers 1 -queue 1 -job-timeout 8s -drain 2s
# Long jobs occupy the worker and the single queue slot; the burst must
# then see at least one 429 and at least one accepted stream.
for i in 1 2 3 4 5 6; do
    curl -s --max-time 30 -o "$tmp/full.body.$i" -D "$tmp/full.hdr.$i" -w '%{http_code}\n' \
        -d '{"protocol":"exactmajority","n":2000000,"seed":1,"replicas":4,"gap":1}' \
        "$base/v1/simulate" > "$tmp/full.code.$i" &
done
wait $(jobs -p | grep -v "^$srv_pid$") 2>/dev/null || true
codes=$(cat "$tmp"/full.code.* | sort | uniq -c)
echo "$codes" | sed 's/^/   /'
grep -q '429' "$tmp"/full.code.* || { echo "loadtest: no 429 under overload" >&2; exit 1; }
grep -q '200' "$tmp"/full.code.* || { echo "loadtest: no stream accepted under overload" >&2; exit 1; }
rejected=$(grep -l 429 "$tmp"/full.code.* | head -n 1)
jq -e '.error | test("queue full")' "${rejected%.code.*}.body.${rejected##*.}" >/dev/null \
    || { echo "loadtest: 429 body lacks queue-full error" >&2; exit 1; }

# The 429 must carry a computed integer Retry-After (queue-depth-scaled,
# jittered — not the old constant), and honoring it must eventually get a
# small job accepted once the backlog drains.
ra=$(awk 'tolower($1)=="retry-after:"{print $2}' "${rejected%.code.*}.hdr.${rejected##*.}" | tr -d '\r')
case "$ra" in
    ''|*[!0-9]*) echo "loadtest: 429 Retry-After is not integer seconds: '$ra'" >&2; exit 1 ;;
esac
[ "$ra" -ge 1 ] && [ "$ra" -le 60 ] \
    || { echo "loadtest: 429 Retry-After out of range: $ra" >&2; exit 1; }
echo "   429 carried Retry-After: ${ra}s; honoring it until accepted"
deadline=$(( $(date +%s) + 60 ))
while :; do
    sleep "$ra"
    code=$(curl -s --max-time 30 -o "$tmp/honor.body" -D "$tmp/honor.hdr" -w '%{http_code}' \
        -d '{"protocol":"leader","n":128,"seed":5,"replicas":1}' "$base/v1/simulate")
    [ "$code" = 200 ] && break
    [ "$code" = 429 ] || { echo "loadtest: unexpected status $code while honoring Retry-After" >&2; exit 1; }
    ra=$(awk 'tolower($1)=="retry-after:"{print $2}' "$tmp/honor.hdr" | tr -d '\r')
    case "$ra" in ''|*[!0-9]*) ra=1 ;; esac
    [ "$(date +%s)" -lt "$deadline" ] || { echo "loadtest: never accepted after honoring Retry-After" >&2; exit 1; }
done
jq -es 'length == 1 and all(.converged)' "$tmp/honor.body" >/dev/null \
    || { echo "loadtest: post-backoff stream invalid" >&2; exit 1; }
echo "   accepted after backoff"
stop_server

echo "== phase 5: CLI vs HTTP determinism =="
start_server "$tmp/det.log"
spec='{"protocol":"exactmajority","n":2000,"seed":42,"replicas":4,"gap":1}'
"$tmp/popsim" -p exactmajority -n 2000 -seed 42 -replicas 4 -gap 1 -ndjson > "$tmp/cli.ndjson"
curl -fsS -d "$spec" "$base/v1/simulate" > "$tmp/http.ndjson"
cmp "$tmp/cli.ndjson" "$tmp/http.ndjson" \
    || { echo "loadtest: HTTP stream differs from popsim -ndjson" >&2; exit 1; }
echo "   byte-identical ($(wc -c < "$tmp/cli.ndjson") bytes)"

echo "== phase 6: graceful drain =="
curl -fsS --max-time 30 \
    -d '{"protocol":"exactmajority","n":200000,"seed":9,"replicas":2,"gap":1}' \
    "$base/v1/simulate" > "$tmp/drain.ndjson" &
curl_pid=$!
sleep 0.3
kill -TERM "$srv_pid"
wait "$curl_pid" || { echo "loadtest: in-flight stream was cut off by SIGTERM" >&2; exit 1; }
jq -es 'length == 2 and all(.converged)' "$tmp/drain.ndjson" >/dev/null \
    || { echo "loadtest: drained stream incomplete" >&2; cat "$tmp/drain.ndjson" >&2; exit 1; }
wait "$srv_pid" || { echo "loadtest: server exited non-zero on drain" >&2; cat "$tmp/det.log" >&2; exit 1; }
srv_pid=""
grep -q 'drained, bye' "$tmp/det.log" || { echo "loadtest: no clean drain" >&2; exit 1; }

echo "== phase 7: hot cache ($CONC identical POSTs, 1 execution) =="
start_server "$tmp/cache.log" -store "$tmp/store"
pids=()
for i in $(seq 1 "$CONC"); do
    curl -fsS --max-time 60 \
        -d '{"protocol":"exactmajority","n":2000,"seed":777,"replicas":2,"gap":1}' \
        "$base/v1/simulate" > "$tmp/hot.$i" &
    pids+=($!)
done
fail=0
for p in "${pids[@]}"; do wait "$p" || fail=1; done
[ "$fail" -eq 0 ] || { echo "loadtest: a hot-cache request failed" >&2; exit 1; }
for i in $(seq 2 "$CONC"); do
    cmp -s "$tmp/hot.1" "$tmp/hot.$i" \
        || { echo "loadtest: hot-cache response $i differs from response 1" >&2; exit 1; }
done
curl -fsS "$base/metrics" > "$tmp/cache-metrics.json"
jq -e --argjson c "$CONC" '.jobs_accepted == 1 and .store.hits == $c - 1 and .store.commits == 1' \
    "$tmp/cache-metrics.json" >/dev/null \
    || { echo "loadtest: hot cache did not collapse to one execution" >&2; cat "$tmp/cache-metrics.json" >&2; exit 1; }
echo "   $CONC identical POSTs: 1 job accepted, $((CONC-1)) store hits, all byte-identical"
stop_server

echo "== phase 8: mixed tenants (whale flood vs interactive burst) =="
start_server "$tmp/mix.log" -workers 2 -queue 64
# Whale lane: coalescence at n=1e6 is whale-classed (Θ(n) rounds price at
# hours of serial interactions) but each replica leaps to done in ~0.1s,
# so the flood saturates the whale cap without dragging out the test.
for i in 1 2 3 4; do
    curl -s --max-time 120 -H 'X-Popkit-Tenant: whalecorp' \
        -d '{"protocol":"coalescence","n":1000000,"seed":4242,"replicas":32}' \
        "$base/v1/simulate" > /dev/null &
    mix_pids[$i]=$!
done
sleep 0.3
pids=(); : > "$tmp/mix.codes"
for i in $(seq 1 "$CONC"); do
    { curl -s --max-time 60 -o "$tmp/mix.$i" -w '%{http_code}' \
        -H 'X-Popkit-Tenant: interactive-team' \
        -d "{\"protocol\":\"exactmajority\",\"n\":400,\"seed\":$i,\"replicas\":2,\"gap\":1}" \
        "$base/v1/simulate" >> "$tmp/mix.codes"; echo >> "$tmp/mix.codes"; } &
    pids+=($!)
done
for p in "${pids[@]}"; do wait "$p" || true; done
if grep -qv '^200$' "$tmp/mix.codes"; then
    echo "loadtest: interactive tenant saw non-200s during whale flood:" >&2
    sort "$tmp/mix.codes" | uniq -c >&2
    exit 1
fi
for i in $(seq 1 "$CONC"); do
    jq -es 'length == 2 and all(.converged and .err == null)' "$tmp/mix.$i" >/dev/null \
        || { echo "loadtest: mixed-tenant stream $i invalid" >&2; exit 1; }
done
curl -fsS "$base/metrics" > "$tmp/mix-metrics.json"
jq -e --argjson c "$CONC" '
    (.qos.tenants["interactive-team"].admitted | add) == $c
    and ((.qos.tenants["interactive-team"].rejected // {}) | length) == 0
    and .qos.tenants.whalecorp.admitted.whale >= 1
    and .qos.whales_running <= 1' "$tmp/mix-metrics.json" >/dev/null \
    || { echo "loadtest: mixed-tenant qos accounting wrong" >&2; cat "$tmp/mix-metrics.json" >&2; exit 1; }
echo "   $CONC interactive streams complete with zero rejections under whale flood"
kill "${mix_pids[@]}" 2>/dev/null || true
wait "${mix_pids[@]}" 2>/dev/null || true
stop_server

echo "loadtest: OK"
