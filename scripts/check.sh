#!/usr/bin/env bash
# Tier-2 gate: vet, formatting, and race-detector runs over the packages
# that execute concurrently (the replica fleet and the simulation engine it
# drives, plus the experiment harness's worker cross-check).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l . )
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race (fleet, engine, fault, client, serve, cluster, store, qos) =="
go test -race ./internal/fleet/... ./internal/engine/... ./internal/fault/... ./internal/client/... ./internal/serve/... ./internal/cluster/... ./internal/store/... ./internal/qos/...

echo "== go test -race (expt fleet cross-check) =="
go test -race -run 'TestFleetWorkerCrossCheck|TestReplicateOrder' ./internal/expt/

echo "== go test -race -short (protocol library) =="
# -short skips the statistical equivalence suites (they run in full under
# tier-1 `go test ./...`); the unit, fuzz-seed and driver-integration tests
# still exercise every protocol here.
go test -race -short ./internal/protocols/

echo "== coverage floors (engine, obs, serve, fleet, client, cluster, store, qos, protocols ≥ 80%) =="
cover=$(go test -cover ./internal/engine/ ./internal/obs/ ./internal/serve/ ./internal/fleet/ ./internal/client/ ./internal/cluster/ ./internal/store/ ./internal/qos/ ./internal/protocols/ | tee /dev/stderr)
echo "$cover" | awk '
    /coverage:/ {
        pct = $0
        sub(/.*coverage: /, "", pct)
        sub(/%.*/, "", pct)
        if (pct + 0 < 80) { printf "coverage floor: %s is below 80%%\n", $2; bad = 1 }
    }
    END { exit bad }
' || { echo "check: instrumented packages must keep ≥ 80% statement coverage" >&2; exit 1; }

echo "== benchdiff harness smoke =="
tmpb=$(mktemp)
go test -run '^$' -bench 'BenchmarkAliasSample' -benchtime 100x ./internal/engine/ > "$tmpb"
go run ./cmd/benchdiff "$tmpb" "$tmpb" >/dev/null
rm -f "$tmpb"

echo "== kernel smoke (popbench -kernel -quick under -race) =="
tmpk=$(mktemp -d)
go run -race ./cmd/popbench -kernel -quick -out "$tmpk" >/dev/null
grep -q '"runner": "aggregate"' "$tmpk/BENCH_kernel.json" \
    || { echo "check: kernel smoke produced no aggregate rows" >&2; exit 1; }
rm -rf "$tmpk"

echo "== compare smoke (popbench -compare -quick: one row per protocol × n) =="
tmpc=$(mktemp -d)
go run ./cmd/popbench -compare -quick -out "$tmpc" >/dev/null
# The quick grid is 6 protocols × 2 sizes; every cell must produce exactly
# one row, and every replica of every cell must have converged.
jq -e '
    (.compare.rows | length == 12)
    and ([.compare.rows[] | {p: .protocol, n: .n}] | unique | length == 12)
    and all(.compare.rows[]; .converged == .seeds)
' "$tmpc/BENCH_results.json" >/dev/null \
    || { echo "check: compare smoke missing rows or unconverged cells" >&2; exit 1; }
rm -rf "$tmpc"

echo "== popserved smoke =="
./scripts/serve-smoke.sh

echo "== qos smoke (tenant isolation, whale cap, cost-budget 413) =="
./scripts/qos-smoke.sh

echo "== result-cache smoke (store hits, sweep dedupe, restart persistence) =="
./scripts/cache-smoke.sh

echo "== cluster smoke (coordinator + worker kill -9) =="
./scripts/cluster-smoke.sh

echo "== observability smoke (trace byte-identity + event kinds) =="
./scripts/obs-smoke.sh

echo "== chaos (fault injection + recovery) =="
./scripts/chaos.sh

echo "check: OK"
