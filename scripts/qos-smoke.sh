#!/usr/bin/env bash
# QoS smoke: prove the admission-control layer's core promises end to end.
#
#   1. isolation — while one tenant floods the server with whale-class jobs,
#      another tenant's interactive jobs are all admitted (zero 429s), finish
#      within a latency bound, and stream bytes identical to `popsim -ndjson`
#      (scheduling must never leak into output);
#   2. degradation — the whale concurrency cap keeps at most one whale
#      running (workers−1 with 2 workers), which is what frees the second
#      worker for the interactive lane;
#   3. accounting — per-tenant admits land in /metrics, JSON and Prometheus;
#   4. admission — with -cost-budget, a predictably hopeless job is turned
#      away with a structured 413 naming the tenant, class, predicted cost
#      and reason, while cheap work still flows.
#
# Needs curl and jq. Used by `make qos-smoke` and scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

command -v curl >/dev/null || { echo "qos-smoke: curl required" >&2; exit 2; }
command -v jq   >/dev/null || { echo "qos-smoke: jq required" >&2; exit 2; }

tmp=$(mktemp -d)
srv_pid=""
trap 'kill "$srv_pid" 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$tmp"' EXIT

echo "== build =="
go build -o "$tmp/popserved" ./cmd/popserved
go build -o "$tmp/popsim" ./cmd/popsim

start_server() {
    local log=$1; shift
    "$tmp/popserved" -addr 127.0.0.1:0 "$@" 2> "$log" &
    srv_pid=$!
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$log" | head -n 1)
        [ -n "$base" ] && break
        sleep 0.05
    done
    [ -n "$base" ] || { echo "qos-smoke: popserved did not announce its port" >&2; cat "$log" >&2; exit 1; }
}

stop_server() {
    kill -TERM "$srv_pid" 2>/dev/null || true
    wait "$srv_pid" 2>/dev/null || true
    srv_pid=""
}

# The interactive probe: milliseconds of real work, fixed seed so every run
# must be byte-identical, and small enough that it stays interactive-classed
# even after the self-correcting EWMA scales predictions up under load. The
# whale: coalescence at n=1e7 prices at days of serial work under the
# paper's Θ(n) round bound (the grid charges for interactions, leapt ones
# included), so the model classes it whale — while the aggregate kernel the
# engine actually selects at this n leaps each replica to done fast enough
# for the smoke to stay quick and drain cleanly.
interactive='{"protocol":"exactmajority","n":400,"seed":7,"replicas":2,"gap":2}'
whale='{"protocol":"coalescence","n":10000000,"seed":99,"replicas":32}'

echo "== baseline: popsim -ndjson bytes for the interactive spec =="
"$tmp/popsim" -p exactmajority -n 400 -seed 7 -replicas 2 -gap 2 -ndjson > "$tmp/want.ndjson"

echo "== phase 1: whale flood vs interactive tenant (2 workers, whale cap 1) =="
start_server "$tmp/qos.log" -workers 2 -queue 16 -max-n 20000000
whale_pids=()
for i in 1 2 3 4 5 6; do
    curl -s --max-time 120 -H 'X-Popkit-Tenant: megacorp' -d "$whale" \
        "$base/v1/simulate" > "$tmp/whale.$i" &
    whale_pids+=($!)
done
sleep 0.3   # let the flood land before probing

probes=10
for i in $(seq 1 "$probes"); do
    code=$(curl -s --max-time 30 -o "$tmp/probe.$i" -w '%{http_code} %{time_total}' \
        -H 'X-Popkit-Tenant: alice' -d "$interactive" "$base/v1/simulate")
    set -- $code
    [ "$1" = 200 ] || { echo "qos-smoke: interactive probe $i got status $1 during whale flood" >&2; exit 1; }
    echo "$2" >> "$tmp/probe.times"
    cmp -s "$tmp/probe.$i" "$tmp/want.ndjson" \
        || { echo "qos-smoke: probe $i bytes differ from popsim -ndjson under load" >&2; exit 1; }
done
worst=$(sort -g "$tmp/probe.times" | tail -n 1)
awk -v w="$worst" 'BEGIN { exit !(w + 0 < 5.0) }' \
    || { echo "qos-smoke: interactive p100 ${worst}s under whale flood (want < 5s)" >&2; exit 1; }
echo "   $probes/10 interactive probes: all 200, byte-identical, worst ${worst}s"

curl -fsS "$base/metrics" > "$tmp/qos-metrics.json"
jq -e '.qos.whales_running <= 1' "$tmp/qos-metrics.json" >/dev/null \
    || { echo "qos-smoke: whale concurrency cap exceeded" >&2; cat "$tmp/qos-metrics.json" >&2; exit 1; }
jq -e --argjson p "$probes" '.qos.tenants.alice.admitted.interactive == $p' "$tmp/qos-metrics.json" >/dev/null \
    || { echo "qos-smoke: alice's interactive admits not accounted" >&2; cat "$tmp/qos-metrics.json" >&2; exit 1; }
jq -e '.qos.tenants.megacorp.admitted.whale >= 1' "$tmp/qos-metrics.json" >/dev/null \
    || { echo "qos-smoke: megacorp's whale admits not accounted" >&2; cat "$tmp/qos-metrics.json" >&2; exit 1; }
jq -e '(.qos.tenants.alice.rejected // {}) | length == 0' "$tmp/qos-metrics.json" >/dev/null \
    || { echo "qos-smoke: interactive tenant saw rejections during the flood" >&2; cat "$tmp/qos-metrics.json" >&2; exit 1; }
curl -fsS "$base/metrics?format=prom" > "$tmp/qos.prom"
for series in popkit_qos_admitted_total 'tenant="alice"' 'tenant="megacorp"' 'class="whale"'; do
    grep -qF "$series" "$tmp/qos.prom" \
        || { echo "qos-smoke: prom exposition missing $series" >&2; exit 1; }
done
echo "   per-tenant accounting present in JSON and Prometheus metrics"

# Cut the remaining whale streams (client disconnect cancels the jobs) so
# the drain below is quick, then verify it is clean.
kill "${whale_pids[@]}" 2>/dev/null || true
wait "${whale_pids[@]}" 2>/dev/null || true
stop_server
grep -q 'drained, bye' "$tmp/qos.log" \
    || { echo "qos-smoke: no clean drain after the flood" >&2; cat "$tmp/qos.log" >&2; exit 1; }

echo "== phase 2: -cost-budget admission (structured 413) =="
start_server "$tmp/budget.log" -workers 2 -cost-budget 5s -max-n 20000000
code=$(curl -s -o "$tmp/413.json" -w '%{http_code}' \
    -H 'X-Popkit-Tenant: megacorp' -d "$whale" "$base/v1/simulate")
[ "$code" = 413 ] || { echo "qos-smoke: over-budget whale got status $code, want 413" >&2; cat "$tmp/413.json" >&2; exit 1; }
jq -e '.qos.tenant == "megacorp" and .qos.class == "whale"
       and .qos.reason == "over_budget" and .qos.predicted_cost_ms >= 5000' \
    "$tmp/413.json" >/dev/null \
    || { echo "qos-smoke: 413 body is not a structured rejection" >&2; cat "$tmp/413.json" >&2; exit 1; }
curl -fsS -H 'X-Popkit-Tenant: alice' -d "$interactive" "$base/v1/simulate" > "$tmp/cheap.ndjson"
cmp -s "$tmp/cheap.ndjson" "$tmp/want.ndjson" \
    || { echo "qos-smoke: cheap job under budget not byte-identical" >&2; exit 1; }
jq -e '.qos.tenants.megacorp.rejected.over_budget == 1' <(curl -fsS "$base/metrics") >/dev/null \
    || { echo "qos-smoke: over_budget rejection not accounted" >&2; exit 1; }
stop_server

echo "qos-smoke: OK"
