#!/usr/bin/env bash
# Chaos gate: inject crashes at every layer of the serving stack and prove
# the recovery machinery reproduces the fault-free output byte for byte.
#
#   scripts/chaos.sh
#
#   1. replica crashes, local: POPKIT_FAILPOINTS panics/errors inside replica
#      bodies; popsim -retries re-runs each from its own split seed — output
#      must equal the fault-free stream, at any -workers count
#   2. process kill, server: kill -9 popserved mid-job; a restarted server
#      resumes the job from its on-disk journal — the re-POSTed stream must
#      equal the fault-free stream
#   3. connection cut, wire: the serve/stream failpoint severs the HTTP
#      stream mid-flight; popsim -server's retrying client reconnects,
#      resumes after the last delivered replica, and stdout must equal the
#      fault-free stream
#
# Binaries are built -race so the recovery paths are also race-checked.
# Needs curl and jq (both available in the dev container).
set -euo pipefail
cd "$(dirname "$0")/.."

command -v curl >/dev/null || { echo "chaos: curl required" >&2; exit 2; }
command -v jq   >/dev/null || { echo "chaos: jq required" >&2; exit 2; }

tmp=$(mktemp -d)
srv_pid=""
trap 'kill -9 "$srv_pid" 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$tmp"' EXIT

echo "== build (-race) =="
go build -race -o "$tmp/popsim" ./cmd/popsim
go build -race -o "$tmp/popserved" ./cmd/popserved

start_server() {
    local log=$1; shift
    "$tmp/popserved" -addr 127.0.0.1:0 "$@" 2> "$log" &
    srv_pid=$!
    base=""
    for _ in $(seq 1 200); do
        base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$log" | head -n 1)
        [ -n "$base" ] && break
        sleep 0.05
    done
    [ -n "$base" ] || { echo "chaos: popserved did not announce its port" >&2; cat "$log" >&2; exit 1; }
}

echo "== phase 1: replica crashes recovered by deterministic retry =="
sim="$tmp/popsim -p exactmajority -n 50000 -seed 42 -replicas 8 -gap 1 -ndjson"
$sim > "$tmp/base1.ndjson"
POPKIT_FAILPOINTS='fleet/replica=panic(times=6)' $sim -retries 8 > "$tmp/p1a.ndjson"
cmp "$tmp/base1.ndjson" "$tmp/p1a.ndjson" \
    || { echo "chaos: panic-retry output diverges" >&2; exit 1; }
POPKIT_FAILPOINTS='fleet/replica=error(p=0.3,seed=13)' $sim -retries 12 > "$tmp/p1b.ndjson"
cmp "$tmp/base1.ndjson" "$tmp/p1b.ndjson" \
    || { echo "chaos: error-retry output diverges" >&2; exit 1; }
POPKIT_FAILPOINTS='fleet/replica=panic(p=0.3,seed=7)' $sim -retries 12 -workers 4 > "$tmp/p1c.ndjson"
cmp "$tmp/base1.ndjson" "$tmp/p1c.ndjson" \
    || { echo "chaos: 4-worker faulted output diverges" >&2; exit 1; }
echo "   byte-identical under panics and injected errors ($(wc -c < "$tmp/base1.ndjson") bytes)"

echo "== phase 2: kill -9 mid-job, journal resume across restart =="
spec='{"protocol":"exactmajority","n":500000,"seed":42,"replicas":6,"gap":1,"job_id":"k1"}'
"$tmp/popsim" -p exactmajority -n 500000 -seed 42 -replicas 6 -gap 1 -ndjson > "$tmp/base2.ndjson"
jdir="$tmp/journals"
start_server "$tmp/srv2a.log" -journal "$jdir" -workers 1 -job-timeout 120s
curl -s --max-time 120 -d "$spec" "$base/v1/simulate" > "$tmp/cut.ndjson" &
curl_pid=$!
# Wait for durable progress (header + ≥2 records), then murder the server.
for _ in $(seq 1 600); do
    [ -f "$jdir/k1.ndjson" ] && [ "$(wc -l < "$jdir/k1.ndjson")" -ge 3 ] && break
    sleep 0.05
done
[ -f "$jdir/k1.ndjson" ] || { echo "chaos: journal never appeared" >&2; exit 1; }
kill -9 "$srv_pid"
wait "$curl_pid" 2>/dev/null || true
wait "$srv_pid" 2>/dev/null || true
srv_pid=""
journaled=$(($(wc -l < "$jdir/k1.ndjson") - 1))
echo "   killed popserved with $journaled/6 replicas journaled"

start_server "$tmp/srv2b.log" -journal "$jdir" -workers 1 -job-timeout 120s
curl -fsS --max-time 120 -d "$spec" "$base/v1/simulate" > "$tmp/resumed.ndjson"
cmp "$tmp/base2.ndjson" "$tmp/resumed.ndjson" \
    || { echo "chaos: resumed stream diverges from fault-free run" >&2; exit 1; }
curl -fsS "$base/metrics" | jq -e '.jobs_resumed >= 1' >/dev/null \
    || { echo "chaos: restarted server did not count a resume" >&2; exit 1; }
kill -TERM "$srv_pid"; wait "$srv_pid" 2>/dev/null || true; srv_pid=""
echo "   byte-identical after kill -9 + restart ($(wc -c < "$tmp/resumed.ndjson") bytes)"

echo "== phase 3: mid-stream connection cut, retrying client resumes =="
start_server "$tmp/srv3.log" -journal "$tmp/journals3" -workers 1 -job-timeout 120s \
    -failpoints 'serve/stream=panic(after=2,times=1)'
"$tmp/popsim" -p exactmajority -n 500000 -seed 42 -replicas 6 -gap 1 -ndjson \
    -server "$base" -job-id c1 -retries 8 > "$tmp/client.ndjson" 2> "$tmp/client.log"
sed 's/^/   popsim: /' "$tmp/client.log"
grep -q 'retrying' "$tmp/client.log" \
    || { echo "chaos: stream was never cut — failpoint did not fire" >&2; exit 1; }
cmp "$tmp/base2.ndjson" "$tmp/client.ndjson" \
    || { echo "chaos: client-recovered stream diverges" >&2; exit 1; }
kill -TERM "$srv_pid"; wait "$srv_pid" 2>/dev/null || true; srv_pid=""
echo "   byte-identical across a severed connection"

echo "chaos: OK"
