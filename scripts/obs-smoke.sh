#!/usr/bin/env bash
# Observability smoke: check the popsim -trace contract end to end — the
# NDJSON record stream is byte-identical with and without tracing, and the
# trace files carry the expected event kinds per execution mode (framework
# "iteration", counted "count", compiled "phase-tick" + "rule-group").
# The fleet-backed modes run under the race detector; the compiled runner
# is single-goroutine, so it uses the plain build to keep this fast.
# Used by `make obs-smoke` and scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -race -o "$tmp/popsim" ./cmd/popsim
go build -o "$tmp/popsim-plain" ./cmd/popsim

# Framework protocol through the serving registry: tracing must not change
# a single output byte, and the timeline must show the iteration structure.
"$tmp/popsim" -p leader -n 256 -seed 11 -replicas 3 -ndjson > "$tmp/plain.ndjson"
"$tmp/popsim" -p leader -n 256 -seed 11 -replicas 3 -ndjson -trace "$tmp/leader.trace" > "$tmp/traced.ndjson"
cmp "$tmp/plain.ndjson" "$tmp/traced.ndjson" \
    || { echo "obs-smoke: -trace changed the NDJSON stream" >&2; exit 1; }
grep -q '"kind":"iteration"' "$tmp/leader.trace" \
    || { echo "obs-smoke: leader trace has no iteration events" >&2; cat "$tmp/leader.trace" >&2; exit 1; }

# Counted baseline: the timeline carries per-round tracked counts.
"$tmp/popsim" -p coalescence -n 3000 -seed 5 -ndjson -trace "$tmp/coal.trace" > /dev/null
grep -q '"kind":"count"' "$tmp/coal.trace" \
    || { echo "obs-smoke: coalescence trace has no count events" >&2; cat "$tmp/coal.trace" >&2; exit 1; }

# Compiled protocol: phase-clock timeline plus the closing per-rule-group
# firing census, and the run summary is unchanged by tracing.
"$tmp/popsim-plain" -p leader -n 600 -seed 3 -compiled -json > "$tmp/c1.json"
"$tmp/popsim-plain" -p leader -n 600 -seed 3 -compiled -json -trace "$tmp/compiled.trace" > "$tmp/c2.json"
cmp "$tmp/c1.json" "$tmp/c2.json" \
    || { echo "obs-smoke: -trace changed the compiled summary" >&2; exit 1; }
grep -q '"kind":"phase-tick"' "$tmp/compiled.trace" \
    || { echo "obs-smoke: compiled trace has no phase-tick events" >&2; exit 1; }
grep -q '"kind":"rule-group"' "$tmp/compiled.trace" \
    || { echo "obs-smoke: compiled trace has no rule-group tallies" >&2; exit 1; }

echo "obs-smoke: OK"
