#!/usr/bin/env bash
# Compare the working tree's kernel benchmarks against a baseline git ref.
#
#   scripts/benchdiff.sh [REF] [BENCH_REGEX]
#
# REF defaults to HEAD~1 (the parent commit); BENCH_REGEX defaults to the
# simulation-kernel microbenchmarks. The baseline is materialised in a
# throwaway `git worktree`, both sides run `go test -bench` with -count
# repetitions, and cmd/benchdiff (stdlib benchstat-style comparator)
# renders the medians and deltas.
#
# Environment knobs:
#   COUNT=5        benchmark repetitions per side (default 5; QUICK uses 2)
#   BENCHTIME=1s   -benchtime per benchmark (QUICK uses 1000x)
#   QUICK=1        fast smoke mode for CI / make check
#   FAIL_OVER=10   exit 1 if any ns/op or ns/interaction metric regresses
#                  by more than this percent (benchdiff -fail-over)
set -euo pipefail
cd "$(dirname "$0")/.."

ref="${1:-HEAD~1}"
pattern="${2:-BenchmarkCountStep|BenchmarkBatchStep|BenchmarkAggregateStep|BenchmarkAliasSample|BenchmarkFenwickSample}"
count="${COUNT:-5}"
benchtime="${BENCHTIME:-1s}"
if [ "${QUICK:-0}" = "1" ]; then
    count=2
    benchtime=1000x
fi

base=$(git rev-parse --verify "$ref^{commit}")
tmp=$(mktemp -d)
trap 'git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true; rm -rf "$tmp"' EXIT

echo "== baseline: $ref ($base) =="
git worktree add --detach "$tmp/base" "$base" >/dev/null
(cd "$tmp/base" && go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -count "$count" ./internal/engine/) \
    | tee "$tmp/old.txt" | grep '^Benchmark' || true
if ! grep -q '^Benchmark' "$tmp/old.txt"; then
    echo "(no matching benchmarks at $ref — baseline column will be empty)"
fi

echo "== working tree =="
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -count "$count" ./internal/engine/ \
    | tee "$tmp/new.txt" | grep '^Benchmark' || true

echo
go run ./cmd/benchdiff -fail-over "${FAIL_OVER:-0}" "$tmp/old.txt" "$tmp/new.txt"
