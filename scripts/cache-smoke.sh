#!/usr/bin/env bash
# Cache smoke: prove the content-addressed result store short-circuits real
# fleet work end to end.
#
#   1. POST the same spec twice: the second response must carry
#      X-Popkit-Cache: hit, be byte-identical, and leave jobs_accepted at 1 —
#      the hit never reaches the queue (popkit_store_* metrics confirm).
#   2. ?meta=1 surfaces the spec hash and cached flag as an opt-in opening
#      record without perturbing the default stream.
#   3. Overlapping sweeps through POST /v1/sweep: the second grid resolves
#      its cached points as hits and fans out only the miss set.
#   4. The store survives a restart: a fresh process over the same -store
#      directory serves the old object as a hit.
#
# Needs curl and jq. Used by `make cache-smoke` and scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

command -v curl >/dev/null || { echo "cache-smoke: curl required" >&2; exit 2; }
command -v jq   >/dev/null || { echo "cache-smoke: jq required" >&2; exit 2; }

tmp=$(mktemp -d)
srv_pid=""
trap 'kill "$srv_pid" 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/popserved" ./cmd/popserved

start_server() {
    local log=$1
    "$tmp/popserved" -addr 127.0.0.1:0 -store "$tmp/store" 2> "$log" &
    srv_pid=$!
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$log" | head -n 1)
        [ -n "$base" ] && break
        sleep 0.05
    done
    [ -n "$base" ] || { echo "cache-smoke: popserved did not announce its port" >&2; cat "$log" >&2; exit 1; }
}

start_server "$tmp/log"
spec='{"protocol":"exactmajority","n":2000,"seed":11,"replicas":4,"gap":1}'

echo "== repeat POST served from the store =="
curl -fsS -D "$tmp/h1" -d "$spec" "$base/v1/simulate" > "$tmp/r1.ndjson"
grep -qi '^x-popkit-cache: miss' "$tmp/h1" \
    || { echo "cache-smoke: first POST not marked miss" >&2; cat "$tmp/h1" >&2; exit 1; }
curl -fsS -D "$tmp/h2" -d "$spec" "$base/v1/simulate" > "$tmp/r2.ndjson"
grep -qi '^x-popkit-cache: hit' "$tmp/h2" \
    || { echo "cache-smoke: repeat POST not marked hit" >&2; cat "$tmp/h2" >&2; exit 1; }
cmp "$tmp/r1.ndjson" "$tmp/r2.ndjson" \
    || { echo "cache-smoke: cached stream not byte-identical" >&2; exit 1; }
curl -fsS "$base/metrics" > "$tmp/m1.json"
jq -e '.jobs_accepted == 1 and .store.hits == 1 and .store.misses >= 1 and .store.commits == 1' \
    "$tmp/m1.json" >/dev/null \
    || { echo "cache-smoke: hit did real fleet work" >&2; cat "$tmp/m1.json" >&2; exit 1; }
curl -fsS "$base/metrics?format=prom" > "$tmp/prom.txt"
grep -q '^popkit_store_hits_total 1$' "$tmp/prom.txt" \
    || { echo "cache-smoke: prom exposition missing popkit_store_hits_total" >&2; cat "$tmp/prom.txt" >&2; exit 1; }
echo "   second POST: hit, byte-identical, jobs_accepted still 1"

echo "== ?meta=1 metadata record =="
curl -fsS -d "$spec" "$base/v1/simulate?meta=1" > "$tmp/meta.ndjson"
head -n 1 "$tmp/meta.ndjson" \
    | jq -e '.meta.cached == true and (.meta.spec_hash | length) == 64' >/dev/null \
    || { echo "cache-smoke: ?meta=1 record wrong" >&2; cat "$tmp/meta.ndjson" >&2; exit 1; }
curl -fsS -d "$spec" "$base/v1/simulate" > "$tmp/nometa.ndjson"
if grep -q '"meta"' "$tmp/nometa.ndjson"; then
    echo "cache-smoke: meta record leaked into the default stream" >&2; exit 1
fi
echo "   meta opt-in reports cached=true with the spec hash"

echo "== overlapping sweep dedupe =="
sweep1='{"base":{"protocol":"leader","n":1024,"replicas":2},"grid":{"seed":[1,2]}}'
sweep2='{"base":{"protocol":"leader","n":1024,"replicas":2},"grid":{"seed":[1,2,3]}}'
curl -fsS -d "$sweep1" "$base/v1/sweep" > "$tmp/s1.ndjson"
tail -n 1 "$tmp/s1.ndjson" | jq -e '.sweep.points == 2 and .sweep.misses == 2' >/dev/null \
    || { echo "cache-smoke: first sweep summary wrong" >&2; cat "$tmp/s1.ndjson" >&2; exit 1; }
curl -fsS -d "$sweep2" "$base/v1/sweep" > "$tmp/s2.ndjson"
tail -n 1 "$tmp/s2.ndjson" | jq -e '.sweep.hits == 2 and .sweep.misses == 1' >/dev/null \
    || { echo "cache-smoke: overlap sweep summary wrong" >&2; cat "$tmp/s2.ndjson" >&2; exit 1; }
head -n 3 "$tmp/s2.ndjson" | jq -es '[.[].cache] == ["hit","hit","miss"]' >/dev/null \
    || { echo "cache-smoke: overlap manifest not hit,hit,miss" >&2; cat "$tmp/s2.ndjson" >&2; exit 1; }
# One repeat job + sweep misses 2 + 1: exactly 4 jobs ever reached the fleet.
curl -fsS "$base/metrics" > "$tmp/m2.json"
jq -e '.jobs_accepted == 4' "$tmp/m2.json" >/dev/null \
    || { echo "cache-smoke: sweep hits did real fleet work" >&2; cat "$tmp/m2.json" >&2; exit 1; }
echo "   overlap sweep: hit,hit,miss — only the miss set ran"

echo "== store survives restart =="
kill -TERM "$srv_pid"; wait "$srv_pid"; srv_pid=""
start_server "$tmp/log2"
curl -fsS -D "$tmp/h3" -d "$spec" "$base/v1/simulate" > "$tmp/r3.ndjson"
grep -qi '^x-popkit-cache: hit' "$tmp/h3" \
    || { echo "cache-smoke: restarted server missed a persisted object" >&2; cat "$tmp/h3" >&2; exit 1; }
cmp "$tmp/r1.ndjson" "$tmp/r3.ndjson" \
    || { echo "cache-smoke: post-restart stream not byte-identical" >&2; exit 1; }
echo "   restarted server served the persisted object as a hit"

echo "cache-smoke: OK"
