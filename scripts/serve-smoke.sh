#!/usr/bin/env bash
# Smoke-test popserved: boot it on a free port, run one small exact-majority
# job through POST /v1/simulate, check the NDJSON stream (the repeat POST is
# a result-store hit), and verify a clean SIGTERM drain. Used by
# `make serve-smoke` and scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
srv_pid=""
trap 'kill "$srv_pid" 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/popserved" ./cmd/popserved
go build -o "$tmp/popsim" ./cmd/popsim
# One executor plus a stream failpoint (400ms per record, first job only):
# that pins the single worker on a slow job long enough to prove /healthz
# answers without it.
"$tmp/popserved" -addr 127.0.0.1:0 -pprof -workers 1 -store "$tmp/store" \
    -failpoints 'serve/stream=sleep(d=400ms,times=2)' 2> "$tmp/log" &
srv_pid=$!

# The server announces "listening on http://HOST:PORT" on stderr.
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's#.*listening on \(http://[^ ]*\).*#\1#p' "$tmp/log" | head -n 1)
    [ -n "$base" ] && break
    sleep 0.05
done
[ -n "$base" ] || { echo "serve-smoke: popserved did not announce its port" >&2; cat "$tmp/log" >&2; exit 1; }

curl -fsS "$base/healthz" | grep -q '"status":"ok"'
curl -fsS "$base/v1/protocols" | grep -q '"exactmajority"'

# /healthz bypasses the job queue: while the only executor crawls through
# the failpoint-delayed job, liveness must still answer within the bound
# (cluster coordinators probe this while workers are saturated).
curl -fsS -d '{"protocol":"exactmajority","n":500,"seed":7,"replicas":2,"gap":1}' \
    "$base/v1/simulate" > "$tmp/slow.ndjson" &
slow_pid=$!
sleep 0.2
curl -fsS --max-time 2 "$base/healthz" | grep -q '"status":"ok"' \
    || { echo "serve-smoke: /healthz stalled behind a busy worker" >&2; exit 1; }
wait "$slow_pid"

# The repeat POST is a content-addressed store hit: byte-identical to the
# live run, marked by X-Popkit-Cache, and never re-enqueued.
curl -fsS -D "$tmp/out.hdr" -d '{"protocol":"exactmajority","n":500,"seed":7,"replicas":2,"gap":1}' \
    "$base/v1/simulate" > "$tmp/out.ndjson"
grep -qi '^x-popkit-cache: hit' "$tmp/out.hdr" \
    || { echo "serve-smoke: repeat POST not served from the store" >&2; cat "$tmp/out.hdr" >&2; exit 1; }
cmp "$tmp/slow.ndjson" "$tmp/out.ndjson" \
    || { echo "serve-smoke: cached stream not byte-identical" >&2; exit 1; }
curl -fsS -d '{"protocol":"exactmajority","n":500,"seed":7,"replicas":2,"gap":1}' \
    "$base/v1/simulate?meta=1" > "$tmp/meta.ndjson"
head -n 1 "$tmp/meta.ndjson" | grep -q '"cached":true' \
    || { echo "serve-smoke: ?meta=1 did not report cached:true" >&2; cat "$tmp/meta.ndjson" >&2; exit 1; }

lines=$(wc -l < "$tmp/out.ndjson")
[ "$lines" -eq 2 ] || { echo "serve-smoke: want 2 records, got $lines" >&2; cat "$tmp/out.ndjson" >&2; exit 1; }
if command -v jq >/dev/null 2>&1; then
    jq -es 'length == 2 and all(.converged and .err == null)' "$tmp/out.ndjson" >/dev/null \
        || { echo "serve-smoke: bad records" >&2; cat "$tmp/out.ndjson" >&2; exit 1; }
fi

# Related-work library entry: the same spec through POST /v1/simulate and
# through popsim -ndjson (which runs the identical registry code in-process)
# must stream byte-identical records, for any -workers count.
curl -fsS "$base/v1/protocols" | grep -q '"gsexactmajority"'
curl -fsS -d '{"protocol":"gsexactmajority","n":600,"seed":11,"replicas":2,"gap":1}' \
    "$base/v1/simulate" > "$tmp/gs.http.ndjson"
"$tmp/popsim" -p gsexactmajority -n 600 -gap 1 -seed 11 -replicas 2 -workers 3 -ndjson > "$tmp/gs.cli.ndjson"
cmp "$tmp/gs.http.ndjson" "$tmp/gs.cli.ndjson" \
    || { echo "serve-smoke: gsexactmajority CLI and HTTP streams diverge" >&2; \
         diff "$tmp/gs.http.ndjson" "$tmp/gs.cli.ndjson" >&2 || true; exit 1; }

# Observability surface: JSON metrics, the Prometheus exposition of the
# same registry, and a short CPU profile from the -pprof mount.
# Two jobs reached the queue (the gsexactmajority POST was a store miss);
# the two exactmajority repeats were store hits.
curl -fsS "$base/metrics" | grep -q '"jobs_accepted": 2' \
    || { echo "serve-smoke: JSON metrics missing jobs_accepted" >&2; exit 1; }
curl -fsS "$base/metrics?format=prom" > "$tmp/prom.txt"
grep -q '^popkit_jobs_accepted_total 2$' "$tmp/prom.txt" \
    || { echo "serve-smoke: prom exposition missing popkit_jobs_accepted_total" >&2; cat "$tmp/prom.txt" >&2; exit 1; }
grep -q '^popkit_store_hits_total 2$' "$tmp/prom.txt" \
    || { echo "serve-smoke: prom exposition missing popkit_store_hits_total" >&2; cat "$tmp/prom.txt" >&2; exit 1; }
grep -q '^popkit_http_request_duration_seconds_bucket{endpoint="simulate"' "$tmp/prom.txt" \
    || { echo "serve-smoke: prom exposition missing request-latency histogram" >&2; exit 1; }
curl -fsS "$base/debug/pprof/profile?seconds=1" > "$tmp/cpu.pprof"
[ -s "$tmp/cpu.pprof" ] || { echo "serve-smoke: empty CPU profile from /debug/pprof" >&2; exit 1; }

kill -TERM "$srv_pid"
wait "$srv_pid"
grep -q 'drained, bye' "$tmp/log" || { echo "serve-smoke: no clean drain" >&2; cat "$tmp/log" >&2; exit 1; }
echo "serve-smoke: OK"
